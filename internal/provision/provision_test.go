package provision

import (
	"testing"

	"duet/internal/assign"
	"duet/internal/latmodel"
	"duet/internal/netsim"
	"duet/internal/topology"
	"duet/internal/workload"
)

func world(t testing.TB, totalRate float64, seed int64) (*netsim.Network, *workload.Workload, *assign.Assignment) {
	t.Helper()
	topo := topology.MustNew(topology.Config{
		Containers:       4,
		ToRsPerContainer: 8,
		AggsPerContainer: 4,
		Cores:            8,
		ServersPerToR:    20,
	})
	net := netsim.New(topo)
	w, err := workload.Generate(workload.Config{
		NumVIPs: 300, TotalRate: totalRate, Epochs: 2, Seed: seed,
		TrafficSkew: 1.6, MaxDIPs: 400, InternetFrac: 0.3, ChurnStdDev: 0.25,
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := assign.Compute(net, w, 0, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return net, w, asg
}

func TestAnantaScalesWithTraffic(t *testing.T) {
	spec := ProductionSMux()
	if got := Ananta(3.6e9, spec); got != 1 {
		t.Fatalf("1-SMux traffic needs %d", got)
	}
	if got := Ananta(10e12, spec); got < 2700 {
		t.Fatalf("10Tbps needs %d SMuxes, want ≥2700 (paper: >4000 at 15T)", got)
	}
	if Ananta(0, spec) != 0 {
		t.Fatal("zero traffic needs zero SMuxes")
	}
}

// TestDuetFarFewerSMuxes is Figure 16's headline: Duet needs order(s) of
// magnitude fewer SMuxes than Ananta for the same traffic.
func TestDuetFarFewerSMuxes(t *testing.T) {
	net, w, asg := world(t, 4e11, 1)
	spec := ProductionSMux()
	ananta := Ananta(asg.TotalRate, spec)
	duet := Duet(asg, w, 0, net.Topo, spec, DefaultFailureModel(), 0)
	if duet.Total >= ananta {
		t.Fatalf("Duet %d SMuxes vs Ananta %d — no reduction", duet.Total, ananta)
	}
	ratio := float64(ananta) / float64(duet.Total)
	if ratio < 3 {
		t.Fatalf("reduction only %.1fx, want ≥3x (paper: 12-24x at scale)", ratio)
	}
	t.Logf("Ananta=%d Duet=%d (%.1fx fewer; failure need %d, leftover need %d)",
		ananta, duet.Total, ratio, duet.ForFailure, duet.ForLeftover)
}

func TestDuetFailureDominates(t *testing.T) {
	// Paper §8.2: "majority of the SMuxes needed by DUET were needed to
	// handle failure".
	net, w, asg := world(t, 4e11, 2)
	b := Duet(asg, w, 0, net.Topo, ProductionSMux(), DefaultFailureModel(), 0)
	if b.ForFailure < b.ForLeftover {
		t.Fatalf("failure need %d < leftover need %d; expected failure-dominated sizing",
			b.ForFailure, b.ForLeftover)
	}
	if b.WorstFailureRate <= 0 {
		t.Fatal("no failure traffic computed")
	}
}

func TestDuetTransitRaisesTotal(t *testing.T) {
	net, w, asg := world(t, 4e11, 3)
	spec := ProductionSMux()
	base := Duet(asg, w, 0, net.Topo, spec, DefaultFailureModel(), 0)
	huge := Duet(asg, w, 0, net.Topo, spec, DefaultFailureModel(), 1e12)
	if huge.Total <= base.Total {
		t.Fatalf("transit traffic did not grow the fleet: %d vs %d", huge.Total, base.Total)
	}
	if huge.ForTransit == 0 {
		t.Fatal("transit component missing")
	}
}

func TestFailureModelVariants(t *testing.T) {
	net, w, asg := world(t, 4e11, 4)
	spec := ProductionSMux()
	none := Duet(asg, w, 0, net.Topo, spec, FailureModel{}, 0)
	if none.WorstFailureRate != 0 {
		t.Fatal("empty failure model produced failure traffic")
	}
	oneSwitch := Duet(asg, w, 0, net.Topo, spec, FailureModel{SwitchFailures: 1}, 0)
	threeSwitch := Duet(asg, w, 0, net.Topo, spec, FailureModel{SwitchFailures: 3}, 0)
	if threeSwitch.WorstFailureRate < oneSwitch.WorstFailureRate {
		t.Fatal("3-switch failure smaller than 1-switch")
	}
	container := Duet(asg, w, 0, net.Topo, spec, FailureModel{ContainerFailure: true}, 0)
	if container.WorstFailureRate <= 0 {
		t.Fatal("container failure produced no traffic")
	}
}

func TestTenGigSpecNeedsFewer(t *testing.T) {
	net, w, asg := world(t, 4e11, 5)
	fm := DefaultFailureModel()
	prod := Duet(asg, w, 0, net.Topo, ProductionSMux(), fm, 0)
	ten := Duet(asg, w, 0, net.Topo, TenGigSMux(), fm, 0)
	if ten.Total > prod.Total {
		t.Fatalf("10G SMuxes (%d) need more than 3.6G (%d)", ten.Total, prod.Total)
	}
}

func TestLatencyVsSMuxesShape(t *testing.T) {
	// Figure 17: latency falls as the SMux fleet grows; with few SMuxes the
	// per-SMux load saturates and latency is tens of ms.
	m := latmodel.DefaultSMuxModel()
	total := 10e12
	few := LatencyVsSMuxes(total, 800, 230, m)
	many := LatencyVsSMuxes(total, 800, 15000, m)
	if few <= many {
		t.Fatalf("latency with 230 SMuxes (%v) should exceed 15000 SMuxes (%v)", few, many)
	}
	if few < 5e-3 {
		t.Fatalf("Ananta at 230 SMuxes: %.1fms, paper reports >6ms", few*1e3)
	}
	if many > 1e-3 {
		t.Fatalf("Ananta at 15000 SMuxes: %.2fms, paper reports ~DUET-level", many*1e3)
	}
	if LatencyVsSMuxes(total, 800, 0, m) != latencyInf() {
		t.Fatal("0 SMuxes should be infinite latency")
	}
}

func latencyInf() float64 {
	return LatencyVsSMuxes(1, 800, 0, latmodel.DefaultSMuxModel())
}

// TestDuetLatencyBeatsAnanta is Figure 17's point-vs-curve comparison.
func TestDuetLatencyBeatsAnanta(t *testing.T) {
	net, w, asg := world(t, 4e11, 6)
	sm := latmodel.DefaultSMuxModel()
	hm := latmodel.DefaultHMuxModel()
	b := Duet(asg, w, 0, net.Topo, ProductionSMux(), DefaultFailureModel(), 0)
	duetLat := DuetMedianLatency(asg, b.Total, 800, sm, hm)
	anantaLat := LatencyVsSMuxes(asg.TotalRate, 800, b.Total, sm)
	if duetLat >= anantaLat {
		t.Fatalf("Duet %.0fµs not better than Ananta %.0fµs at equal fleet", duetLat*1e6, anantaLat*1e6)
	}
	// With >90% of traffic on HMuxes, Duet's added latency is tens of µs.
	if duetLat > 100e-6 {
		t.Fatalf("Duet added latency %.0fµs, want well under SMux's 196µs", duetLat*1e6)
	}
	_ = net
}
