// Package provision implements the SMux-fleet sizing model of the paper's
// evaluation (§8.2, Figure 16 and Figure 20c): Ananta needs enough SMuxes to
// carry ALL VIP traffic, while Duet needs them only as a backstop, sized by
// the maximum of (a) the traffic of VIPs the assignment left on SMuxes,
// (b) the failover traffic under the provisioning failure model (a full
// container failure or three random switch failures, whichever is worse),
// and (c) the traffic in transit through SMuxes during migration.
package provision

import (
	"math"
	"sort"

	"duet/internal/assign"
	"duet/internal/latmodel"
	"duet/internal/topology"
	"duet/internal/workload"
)

// SMuxSpec describes the per-SMux capacity used for sizing.
type SMuxSpec struct {
	// CapacityBps is the traffic one SMux can carry (3.6 Gbps on the
	// production SKU; 10 Gbps if the NIC, not the CPU, were the limit).
	CapacityBps float64
}

// ProductionSMux is the paper's measured 3.6 Gbps SMux.
func ProductionSMux() SMuxSpec { return SMuxSpec{CapacityBps: latmodel.SMuxCapacityBps} }

// TenGigSMux is the optimistic 10 Gbps SMux variant used in Figure 16.
func TenGigSMux() SMuxSpec { return SMuxSpec{CapacityBps: 10e9} }

// count converts a traffic volume to an SMux count (at least 1 if any
// traffic exists — the backstop is never empty).
func (s SMuxSpec) count(rate float64) int {
	if rate <= 0 {
		return 0
	}
	return int(math.Ceil(rate / s.CapacityBps))
}

// Ananta returns the SMuxes a pure software deployment needs: every byte of
// VIP traffic crosses an SMux.
func Ananta(totalRate float64, spec SMuxSpec) int {
	return spec.count(totalRate)
}

// FailureModel is the paper's provisioning failure model (§8.2, citing
// [13, 21]): the worse of one full container failure or three simultaneous
// switch failures.
type FailureModel struct {
	SwitchFailures   int  // simultaneous random switch failures (paper: 3)
	ContainerFailure bool // also consider losing one full container
}

// DefaultFailureModel returns the paper's model.
func DefaultFailureModel() FailureModel {
	return FailureModel{SwitchFailures: 3, ContainerFailure: true}
}

// Breakdown reports why Duet needs its SMuxes.
type Breakdown struct {
	// LeftoverRate is the traffic of VIPs not assigned to any HMux.
	LeftoverRate float64
	// WorstFailureRate is the worst-case failover traffic under the model.
	WorstFailureRate float64
	// TransitRate is the migration-transit traffic (0 if not provided).
	TransitRate float64

	// ForLeftover, ForFailure, ForTransit are the component SMux counts;
	// Total is the fleet size: count(leftover + worstFailure) and transit
	// are alternatives — migration is deferred under failure — so Total is
	// the max of the combined steady-state+failure need and the transit need.
	ForLeftover, ForFailure, ForTransit, Total int
}

// Duet sizes the SMux fleet for an assignment. transitRate is the traffic
// simultaneously in flight through the SMux stepping stone during migration
// (use assign.ShuffledRate; pass 0 to ignore migration).
func Duet(asg *assign.Assignment, w *workload.Workload, epoch int, topo *topology.Topology, spec SMuxSpec, fm FailureModel, transitRate float64) Breakdown {
	b := Breakdown{
		LeftoverRate: asg.UnassignedRate(),
		TransitRate:  transitRate,
	}
	per := asg.RatePerSwitch(w, epoch, topo.NumSwitches())

	// Worst container failure: all VIPs hosted inside fail over at once.
	var worstContainer float64
	if fm.ContainerFailure {
		for c := 0; c < topo.Cfg.Containers; c++ {
			var sum float64
			for _, s := range topo.ContainerSwitches(c) {
				sum += per[s]
			}
			if sum > worstContainer {
				worstContainer = sum
			}
		}
	}
	// Worst k simultaneous switch failures: the k most loaded switches.
	var worstSwitches float64
	if fm.SwitchFailures > 0 {
		rates := append([]float64(nil), per...)
		sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
		k := fm.SwitchFailures
		if k > len(rates) {
			k = len(rates)
		}
		for i := 0; i < k; i++ {
			worstSwitches += rates[i]
		}
	}
	b.WorstFailureRate = math.Max(worstContainer, worstSwitches)

	b.ForLeftover = spec.count(b.LeftoverRate)
	b.ForFailure = spec.count(b.WorstFailureRate)
	b.ForTransit = spec.count(b.TransitRate)

	steady := spec.count(b.LeftoverRate + b.WorstFailureRate)
	b.Total = steady
	if b.ForTransit+b.ForLeftover > b.Total {
		b.Total = b.ForTransit + b.ForLeftover
	}
	if b.Total == 0 && asg.TotalRate > 0 {
		b.Total = 1 // the backstop always exists
	}
	return b
}

// LatencyVsSMuxes returns Ananta's median added latency when totalRate is
// spread over n SMuxes (the Figure 17 curve): per-SMux packet rate drives
// the Figure 1 queueing model.
func LatencyVsSMuxes(totalRate float64, meanPacketBytes float64, n int, m latmodel.SMuxModel) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	pps := totalRate / (8 * meanPacketBytes) / float64(n)
	return m.MedianLatency(pps)
}

// DuetMedianLatency returns the median added latency of Duet's traffic
// mixture (the Figure 17 point). HMux-assigned traffic sees switch latency
// plus the indirection propagation; leftover traffic sees SMux latency at
// the backstop's operating point. The median of the mixture is the HMux
// latency whenever HMuxes carry the majority of traffic — which is why the
// paper's Duet point sits at ~474 µs RTT while Ananta with the same fleet
// sits above 6 ms.
func DuetMedianLatency(asg *assign.Assignment, nSMux int, meanPacketBytes float64, sm latmodel.SMuxModel, hm latmodel.HMuxModel) float64 {
	var smuxLat float64
	if nSMux > 0 {
		pps := asg.UnassignedRate() / (8 * meanPacketBytes) / float64(nSMux)
		smuxLat = sm.MedianLatency(pps)
	}
	if asg.AssignedFraction() >= 0.5 {
		return hm.Latency + latmodel.IndirectionDelay
	}
	return smuxLat
}
