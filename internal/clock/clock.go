// Package clock is the single place in the module allowed to read the
// ambient wall clock. Everything else takes an injected `func() float64`
// seconds source (virtual time in tests, one of these constructors in
// production) — the invariant that keeps failover traces and churn
// tests deterministic, mechanically enforced by the noclock analyzer
// (cmd/duetvet).
package clock

import "time"

// Wall returns a monotonic clock: seconds elapsed since the call that
// created it. It is the production default for every Config.Clock /
// Config.Now knob in the tree.
//
// The zero point is per-instance on purpose: dataplane timelines are
// relative (idle TTLs, drain windows, scrape ticks), and a fresh origin
// keeps the float64 seconds small enough that nanosecond-scale deltas
// survive the mantissa for centuries of uptime.
func Wall() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}
