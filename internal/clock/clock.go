// Package clock is the single place in the module allowed to read the
// ambient wall clock. Everything else takes an injected `func() float64`
// seconds source (virtual time in tests, one of these constructors in
// production) — the invariant that keeps failover traces and churn
// tests deterministic, mechanically enforced by the noclock analyzer
// (cmd/duetvet).
package clock

import "time"

// Wall returns a monotonic clock: seconds elapsed since the call that
// created it. It is the production default for every Config.Clock /
// Config.Now knob in the tree.
//
// The zero point is per-instance on purpose: dataplane timelines are
// relative (idle TTLs, drain windows, scrape ticks), and a fresh origin
// keeps the float64 seconds small enough that nanosecond-scale deltas
// survive the mantissa for centuries of uptime.
func Wall() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Unix returns an absolute clock: seconds since the Unix epoch. Wall's
// per-instance zero is useless across process boundaries, so the wire
// transport stamps cross-process trace hops with this clock instead —
// every duetd on a machine (or an NTP-disciplined fleet) shares the
// timebase, which is what makes inter-hop wire latency computable when
// one packet's journey is stitched from several processes' recorders.
//
// Epoch seconds carry ~2^31 in the integer part, leaving roughly
// microsecond resolution in a float64 mantissa — coarse for in-process
// hop timing (use Wall), fine for the wire hops it exists to order.
func Unix() func() float64 {
	return func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
}
