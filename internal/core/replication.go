package core

import (
	"fmt"

	"duet/internal/bgp"
	"duet/internal/packet"
	"duet/internal/topology"
)

// VIP replication (paper §9 "Failover and Migration"): instead of relying
// solely on the SMux backstop, a VIP's table entries can be replicated on
// several HMuxes, all announcing the same /32. ECMP splits traffic across
// the replicas; when one dies, the survivors absorb its share with no SMux
// involvement and — because every replica uses the shared hash — no
// connection remaps. The paper left this as future work because the control
// plane gets more complex; here it is implemented so the trade-off can be
// measured (BenchmarkAblationReplication).

// AssignReplicated programs a VIP onto several switches at once. The VIP
// must currently be SMux-hosted. All replicas announce the /32; the fabric
// ECMPs across them.
func (c *Cluster) AssignReplicated(addr packet.Addr, switches []topology.SwitchID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vips[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if len(switches) == 0 {
		return fmt.Errorf("core: no replica switches given")
	}
	if _, ok := c.hmuxHome[addr]; ok {
		return fmt.Errorf("core: VIP %s already on an HMux; withdraw first", addr)
	}
	if c.replicas[addr] != nil {
		return fmt.Errorf("core: VIP %s already replicated; withdraw first", addr)
	}
	seen := make(map[topology.SwitchID]bool, len(switches))
	for _, sw := range switches {
		if int(sw) < 0 || int(sw) >= len(c.HMuxes) {
			return ErrNoSuchSwitch
		}
		if !c.switchUp[sw] {
			return ErrSwitchDown
		}
		if seen[sw] {
			return fmt.Errorf("core: duplicate replica switch %d", sw)
		}
		seen[sw] = true
	}
	// Program all replicas; roll back on failure so the operation is atomic.
	var done []topology.SwitchID
	for _, sw := range switches {
		if err := c.HMuxes[sw].AddVIP(v); err != nil {
			for _, d := range done {
				_ = c.HMuxes[d].RemoveVIP(addr)
			}
			return err
		}
		done = append(done, sw)
	}
	at := c.tick()
	for _, sw := range switches {
		c.Routes.Announce(packet.HostPrefix(addr), bgp.NodeID(sw), at)
	}
	c.replicas[addr] = append([]topology.SwitchID(nil), switches...)
	c.publishLocked()
	return nil
}

// Replicas returns the switches currently replicating a VIP.
func (c *Cluster) Replicas(addr packet.Addr) []topology.SwitchID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]topology.SwitchID(nil), c.replicas[addr]...)
}

// WithdrawReplicas removes all replicas of a VIP, returning it to the SMux
// backstop.
func (c *Cluster) WithdrawReplicas(addr packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.withdrawReplicasLocked(addr); err != nil {
		return err
	}
	c.publishLocked()
	return nil
}

// withdrawReplicasLocked is WithdrawReplicas without locking or publication;
// the caller holds c.mu and republishes.
func (c *Cluster) withdrawReplicasLocked(addr packet.Addr) error {
	reps, ok := c.replicas[addr]
	if !ok {
		return ErrVIPUnknown
	}
	at := c.tick()
	for _, sw := range reps {
		if c.switchUp[sw] {
			_ = c.HMuxes[sw].RemoveVIP(addr)
		}
		c.Routes.Withdraw(packet.HostPrefix(addr), bgp.NodeID(sw), at)
	}
	delete(c.replicas, addr)
	return nil
}

// dropReplicaOn removes bookkeeping for replicas on a failed switch.
func (c *Cluster) dropReplicaOn(sw topology.SwitchID) {
	for vip, reps := range c.replicas {
		kept := reps[:0]
		for _, r := range reps {
			if r != sw {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(c.replicas, vip)
		} else {
			c.replicas[vip] = kept
		}
	}
}
