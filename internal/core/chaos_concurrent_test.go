package core

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"duet/internal/hostagent"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/topology"
)

// TestChaosConcurrent is the tentpole race test for the snapshot-published
// read path: it floods the cluster with deliveries from many goroutines
// while control-plane goroutines concurrently migrate VIPs between the SMux
// fleet and HMuxes (single-homed and replicated) and fail/recover switches.
//
// The invariant under churn: every Deliver either lands on a DIP that
// belongs to the packet's VIP, or returns one of the defined control-plane
// errors a converging fabric can produce (ErrSwitchDown during the
// blackhole window of an unconverged withdrawal, ErrNoRoute, ErrNoHostAgent
// while a rebooted switch's TIP partition awaits reinstallation). A torn
// read — a foreign DIP, a nil-map panic, an undefined error — fails the
// test, and `go test -race` verifies the memory model underneath it.
func TestChaosConcurrent(t *testing.T) {
	c, err := New(Config{
		Topology: topology.Config{
			Containers:       2,
			ToRsPerContainer: 4,
			AggsPerContainer: 3,
			Cores:            6,
			ServersPerToR:    8,
		},
		NumSMuxes: 3,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fixed VIP population: the flood asserts DIP membership, so the VIP set
	// and backend sets stay stable while placement churns underneath.
	const numVIPs = 10
	type vipUniverse struct {
		addr packet.Addr
		dips map[packet.Addr]bool
	}
	vips := make([]*vipUniverse, 0, numVIPs)
	nextDIP := 1
	for i := 0; i < numVIPs; i++ {
		addr := packet.AddrFrom4(10, 0, 1, byte(i+1))
		u := &vipUniverse{addr: addr, dips: map[packet.Addr]bool{}}
		var bs []service.Backend
		for j := 0; j < 3; j++ {
			d := packet.AddrFrom4(100, byte(nextDIP>>8), byte(nextDIP), 1)
			nextDIP++
			u.dips[d] = true
			bs = append(bs, service.Backend{Addr: d, Weight: 1})
		}
		if err := c.AddVIP(&service.VIP{Addr: addr, Backends: bs}); err != nil {
			t.Fatal(err)
		}
		vips = append(vips, u)
	}

	// One VIP routed through TIP indirection (§5.2 Figure 7), so the flood
	// also exercises the two-switch hop under churn. Its universe is the
	// union of the partitions' DIPs.
	tip1 := packet.MustParseAddr("20.0.0.1")
	tip2 := packet.MustParseAddr("20.0.0.2")
	part1 := []service.Backend{{Addr: packet.MustParseAddr("100.200.0.1"), Weight: 1}}
	part2 := []service.Backend{{Addr: packet.MustParseAddr("100.200.0.2"), Weight: 1}}
	tipVIP := &service.VIP{Addr: packet.AddrFrom4(10, 0, 2, 1), Backends: []service.Backend{
		{Addr: tip1, Weight: 1}, {Addr: tip2, Weight: 1},
	}}
	if err := c.AddVIP(tipVIP); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(tipVIP.Addr, c.Topo.CoreID(0)); err != nil {
		t.Fatal(err)
	}
	tipSw1, tipSw2 := c.Topo.AggID(0, 0), c.Topo.AggID(1, 0)
	if err := c.InstallTIP(tip1, tipSw1, part1); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallTIP(tip2, tipSw2, part2); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(tipVIP.Addr, part1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(tipVIP.Addr, part2); err != nil {
		t.Fatal(err)
	}
	tipUniverse := map[packet.Addr]bool{part1[0].Addr: true, part2[0].Addr: true}
	// AddVIP created pseudo host agents at the TIP addresses (it cannot tell
	// a TIP backend from a DIP). Detach their registrations so a packet that
	// reaches a TIP while its partition awaits reinstallation surfaces as
	// the defined ErrNotForThisHost instead of a phantom delivery.
	for _, tip := range []packet.Addr{tip1, tip2} {
		a, ok := c.Agent(tip)
		if !ok {
			t.Fatalf("no pseudo-agent at TIP %s", tip)
		}
		if err := a.UnregisterDIP(tip); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Mutator 1: placement churn. Rejections (a racing switch failure, a
	// placement already present, a replicated VIP) are expected outcomes of
	// our own interleavings and are ignored; the flood goroutines are the
	// ones asserting correctness.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; !stop.Load(); i++ {
			u := vips[rng.Intn(len(vips))]
			switch rng.Intn(4) {
			case 0:
				sw := topology.SwitchID(rng.Intn(c.Topo.NumSwitches()))
				_ = c.AssignToHMux(u.addr, sw) // may fail: down, taken, replicated
			case 1:
				_ = c.WithdrawFromHMux(u.addr)
			case 2:
				a := topology.SwitchID(rng.Intn(c.Topo.NumSwitches()))
				b := topology.SwitchID(rng.Intn(c.Topo.NumSwitches()))
				if a != b {
					_ = c.AssignReplicated(u.addr, []topology.SwitchID{a, b})
				}
			case 3:
				_ = c.WithdrawReplicas(u.addr)
			}
		}
	}()

	// Mutator 2: switch failure/recovery churn over Agg and Core switches
	// (never ToRs — they front the servers, and the paper's failure model
	// never isolates a rack either). This goroutine is the only one failing
	// switches, so its local `failed` map is authoritative.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		failed := map[topology.SwitchID]bool{}
		candidates := []topology.SwitchID{tipSw1, tipSw2, c.Topo.CoreID(0), c.Topo.CoreID(1), c.Topo.AggID(0, 1), c.Topo.AggID(1, 1)}
		for !stop.Load() {
			sw := candidates[rng.Intn(len(candidates))]
			if failed[sw] {
				c.RecoverSwitch(sw)
				delete(failed, sw)
				// Reinstall a recovered TIP partition, as the controller
				// would: the reboot wiped the switch's tables.
				if sw == tipSw1 {
					_ = c.InstallTIP(tip1, tipSw1, part1)
				}
				if sw == tipSw2 {
					_ = c.InstallTIP(tip2, tipSw2, part2)
				}
			} else if len(failed) < 2 && !wouldPartition(c.Topo, failed, sw) {
				c.FailSwitch(sw)
				failed[sw] = true
			}
		}
		for sw := range failed {
			c.RecoverSwitch(sw)
		}
	}()

	// The flood: 8 goroutines × 2000 packets, mixing the stable VIPs and
	// the TIP-indirected one.
	const (
		floodWorkers   = 8
		packetsPerGoro = 2000
	)
	var delivered, rejected atomic.Int64
	var floodWg sync.WaitGroup
	errCh := make(chan error, floodWorkers)
	for w := 0; w < floodWorkers; w++ {
		floodWg.Add(1)
		go func(w int) {
			defer floodWg.Done()
			for i := 0; i < packetsPerGoro; i++ {
				var dst packet.Addr
				var universe map[packet.Addr]bool
				if i%7 == 0 {
					dst, universe = tipVIP.Addr, tipUniverse
				} else {
					u := vips[(w+i)%len(vips)]
					dst, universe = u.addr, u.dips
				}
				seq := uint32(w*packetsPerGoro + i)
				pkt := packet.BuildTCP(packet.FiveTuple{
					Src: packet.AddrFrom4(30, byte(w), byte(seq>>8), byte(seq)), Dst: dst,
					SrcPort: uint16(1024 + seq%40000), DstPort: 80, Proto: packet.ProtoTCP,
				}, packet.TCPSyn, nil)
				d, err := c.Deliver(pkt)
				if err != nil {
					if errors.Is(err, ErrSwitchDown) || errors.Is(err, ErrNoRoute) ||
						errors.Is(err, ErrNoHostAgent) || errors.Is(err, hostagent.ErrNotForThisHost) {
						rejected.Add(1)
						continue
					}
					errCh <- err
					return
				}
				if !universe[d.DIP] {
					errCh <- errors.New("VIP " + dst.String() + " delivered to foreign DIP " + d.DIP.String())
					return
				}
				delivered.Add(1)
			}
		}(w)
	}

	floodWg.Wait()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if delivered.Load() == 0 {
		t.Fatal("no packet delivered; vacuous")
	}
	// The defined-error windows must stay windows, not the steady state.
	if r, d := rejected.Load(), delivered.Load(); r > d {
		t.Fatalf("more rejections (%d) than deliveries (%d); churn swamped the datapath", r, d)
	}
	t.Logf("delivered=%d rejected=%d epoch=%d", delivered.Load(), rejected.Load(), c.Epoch())
}
