// Package core assembles the Duet system (paper §3, §6): a datacenter
// fabric whose switches each run an HMux, a small SMux fleet announcing the
// VIP aggregate as a backstop, host agents on the servers, a BGP-style
// routing view with longest-prefix-match preference, and the controller
// machinery (see internal/controller) that places and migrates VIPs.
//
// Cluster offers a byte-accurate datapath: Deliver pushes a real IPv4 packet
// through route lookup, mux selection, IP-in-IP encapsulation (including TIP
// indirection) and host-agent decapsulation, returning the delivery the
// destination server observes.
package core

import (
	"errors"
	"fmt"

	"duet/internal/bgp"
	"duet/internal/ecmp"
	"duet/internal/hmux"
	"duet/internal/hostagent"
	"duet/internal/netsim"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/smux"
	"duet/internal/telemetry"
	"duet/internal/topology"
)

// Errors returned by the cluster.
var (
	ErrNoRoute      = errors.New("core: no route for destination")
	ErrVIPUnknown   = errors.New("core: VIP not configured")
	ErrVIPExists    = errors.New("core: VIP already configured")
	ErrSwitchDown   = errors.New("core: switch is down")
	ErrNoSuchSwitch = errors.New("core: no such switch")
)

// smuxNodeBase offsets SMux IDs in the routing table (switches use their
// SwitchID directly).
const smuxNodeBase bgp.NodeID = 1 << 20

// Config sizes a cluster.
type Config struct {
	Topology topology.Config
	// NumSMuxes is the backstop fleet size (use internal/provision to pick).
	NumSMuxes int
	// Aggregate is the VIP prefix the SMuxes announce.
	Aggregate packet.Prefix
	// HMuxTables overrides switch table sizes (zero = paper defaults).
	HMuxTables hmux.Config
}

// DefaultConfig returns a cluster matching the scaled-down default fabric
// with a small SMux fleet.
func DefaultConfig() Config {
	return Config{
		Topology:  topology.DefaultConfig(),
		NumSMuxes: 8,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	}
}

// Cluster is a fully wired Duet deployment.
type Cluster struct {
	Topo   *topology.Topology
	Net    *netsim.Network
	Routes *bgp.Table

	HMuxes []*hmux.Mux // per switch
	SMuxes []*smux.Mux
	// SMuxRacks locates the SMux servers.
	SMuxRacks []int

	agents map[packet.Addr]*hostagent.Agent // host addr → agent

	vips     map[packet.Addr]*service.VIP
	hmuxHome map[packet.Addr]topology.SwitchID   // VIP → switch, if assigned
	replicas map[packet.Addr][]topology.SwitchID // §9 replicated VIPs

	switchUp []bool
	tableCfg hmux.Config // per-switch table sizing, for reboot re-creation
	now      float64     // logical route clock; every mutation advances it

	reg *telemetry.Registry
	rec *telemetry.Recorder
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	topo, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.NumSMuxes <= 0 {
		cfg.NumSMuxes = 1
	}
	if cfg.Aggregate.Bits == 0 && cfg.Aggregate.Addr == 0 {
		cfg.Aggregate = packet.MustParsePrefix("10.0.0.0/8")
	}
	c := &Cluster{
		Topo:     topo,
		Net:      netsim.New(topo),
		Routes:   bgp.NewTable(),
		HMuxes:   make([]*hmux.Mux, topo.NumSwitches()),
		agents:   make(map[packet.Addr]*hostagent.Agent),
		vips:     make(map[packet.Addr]*service.VIP),
		hmuxHome: make(map[packet.Addr]topology.SwitchID),
		replicas: make(map[packet.Addr][]topology.SwitchID),
		switchUp: make([]bool, topo.NumSwitches()),
		reg:      telemetry.NewRegistry(),
		rec:      telemetry.NewRecorder(telemetry.DefaultRecorderSize),
	}
	// Trace events carry the cluster's logical route clock; callers running
	// real time (or the testbed's virtual time) can re-clock via Telemetry().
	c.rec.SetClock(func() float64 { return c.now })
	c.Routes.SetTelemetry(c.reg, c.rec)
	c.tableCfg = cfg.HMuxTables
	for s := range c.HMuxes {
		tcfg := cfg.HMuxTables
		tcfg.SelfAddr = switchAddr(s)
		c.HMuxes[s] = hmux.New(tcfg)
		c.HMuxes[s].SetTelemetry(c.reg, c.rec, uint32(s))
		c.switchUp[s] = true
	}
	racks := topo.NumRacks()
	for i := 0; i < cfg.NumSMuxes; i++ {
		sm := smux.New(smux.DefaultConfig(packet.AddrFrom4(192, 168, byte(i>>8), byte(i))))
		sm.SetTelemetry(c.reg, c.rec, uint32(smuxNodeBase)+uint32(i))
		c.SMuxes = append(c.SMuxes, sm)
		c.SMuxRacks = append(c.SMuxRacks, (i*(racks/cfg.NumSMuxes+1))%racks)
		c.Routes.Announce(cfg.Aggregate, smuxNodeBase+bgp.NodeID(i), 0)
	}
	return c, nil
}

// Telemetry exposes the cluster's always-on metric registry and flight
// recorder (duetctl's `top` view reads these).
func (c *Cluster) Telemetry() (*telemetry.Registry, *telemetry.Recorder) {
	return c.reg, c.rec
}

// newAgent creates and instruments a host agent.
func (c *Cluster) newAgent(hostAddr packet.Addr) *hostagent.Agent {
	a := hostagent.New(hostAddr)
	a.SetTelemetry(c.reg, c.rec, uint32(hostAddr))
	return a
}

// switchAddr derives a switch's loopback address from its ID.
func switchAddr(s int) packet.Addr {
	return packet.AddrFrom4(172, 16, byte(s>>8), byte(s))
}

func (c *Cluster) tick() float64 {
	c.now++
	return c.now
}

// Now returns the logical route clock.
func (c *Cluster) Now() float64 { return c.now }

// AddVIP configures a new VIP: per §5.2 it lands on the SMuxes first; the
// controller may later migrate it to an HMux.
func (c *Cluster) AddVIP(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if _, ok := c.vips[v.Addr]; ok {
		return ErrVIPExists
	}
	for _, sm := range c.SMuxes {
		if err := sm.AddVIP(v); err != nil {
			return err
		}
	}
	cp := *v
	c.vips[v.Addr] = &cp
	// Every backend gets a host agent (one host per DIP unless the caller
	// registered a virtualized host explicitly via RegisterHost).
	for _, b := range allBackends(v) {
		if _, ok := c.agents[b.Addr]; !ok {
			a := c.newAgent(b.Addr)
			if err := a.RegisterDIP(v.Addr, b.Addr); err != nil {
				return err
			}
			c.agents[b.Addr] = a
		} else if err := c.agents[b.Addr].RegisterDIP(v.Addr, b.Addr); err != nil {
			return err
		}
	}
	c.tick()
	return nil
}

func allBackends(v *service.VIP) []service.Backend {
	out := append([]service.Backend(nil), v.Backends...)
	for _, pr := range v.Ports {
		out = append(out, pr.Backends...)
	}
	return out
}

// RegisterHost attaches a virtualized host running several VM DIPs for a VIP
// (Figure 6). The VIP's backend list should reference hostAddr (the HIP),
// possibly multiple times for weighting.
func (c *Cluster) RegisterHost(hostAddr packet.Addr, vip packet.Addr, vmDIPs []packet.Addr) error {
	a, ok := c.agents[hostAddr]
	if !ok {
		a = c.newAgent(hostAddr)
		c.agents[hostAddr] = a
	}
	for _, d := range vmDIPs {
		if err := a.RegisterDIP(vip, d); err != nil {
			return err
		}
	}
	return nil
}

// RemoveVIP withdraws a VIP everywhere (§5.2 "VIP removal").
func (c *Cluster) RemoveVIP(addr packet.Addr) error {
	if _, ok := c.vips[addr]; !ok {
		return ErrVIPUnknown
	}
	if sw, ok := c.hmuxHome[addr]; ok {
		_ = c.HMuxes[sw].RemoveVIP(addr)
		c.Routes.Withdraw(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
		delete(c.hmuxHome, addr)
	}
	if _, ok := c.replicas[addr]; ok {
		_ = c.WithdrawReplicas(addr)
	}
	for _, sm := range c.SMuxes {
		_ = sm.RemoveVIP(addr)
	}
	delete(c.vips, addr)
	c.tick()
	return nil
}

// VIP returns the configuration of a VIP.
func (c *Cluster) VIP(addr packet.Addr) (*service.VIP, bool) {
	v, ok := c.vips[addr]
	return v, ok
}

// VIPs returns all configured VIP addresses.
func (c *Cluster) VIPs() []packet.Addr {
	out := make([]packet.Addr, 0, len(c.vips))
	for a := range c.vips {
		out = append(out, a)
	}
	return out
}

// HomeOf returns the switch hosting a VIP's HMux entry, or false if the VIP
// is served by the SMuxes.
func (c *Cluster) HomeOf(addr packet.Addr) (topology.SwitchID, bool) {
	sw, ok := c.hmuxHome[addr]
	return sw, ok
}

// AssignToHMux programs a VIP onto a switch and announces its /32 route —
// the raw operation underneath the controller's migration (make-after-
// withdraw happens in the controller).
func (c *Cluster) AssignToHMux(addr packet.Addr, sw topology.SwitchID) error {
	v, ok := c.vips[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if int(sw) < 0 || int(sw) >= len(c.HMuxes) {
		return ErrNoSuchSwitch
	}
	if !c.switchUp[sw] {
		return ErrSwitchDown
	}
	if cur, ok := c.hmuxHome[addr]; ok {
		if cur == sw {
			return nil
		}
		return fmt.Errorf("core: VIP %s already on switch %d; withdraw first", addr, cur)
	}
	if c.replicas[addr] != nil {
		return fmt.Errorf("core: VIP %s is replicated; withdraw replicas first", addr)
	}
	if err := c.HMuxes[sw].AddVIP(v); err != nil {
		return err
	}
	c.hmuxHome[addr] = sw
	c.Routes.Announce(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
	return nil
}

// WithdrawFromHMux removes a VIP from its switch; traffic falls back to the
// SMuxes (the stepping-stone state of §4.2).
func (c *Cluster) WithdrawFromHMux(addr packet.Addr) error {
	sw, ok := c.hmuxHome[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if c.switchUp[sw] {
		if err := c.HMuxes[sw].RemoveVIP(addr); err != nil {
			return err
		}
	}
	c.Routes.Withdraw(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
	delete(c.hmuxHome, addr)
	return nil
}

// FailSwitch kills a switch: dataplane stops and all its routes are
// withdrawn (the cluster facade converges instantly; timed convergence is
// the testbed's domain).
func (c *Cluster) FailSwitch(sw topology.SwitchID) {
	if !c.switchUp[sw] {
		return
	}
	c.switchUp[sw] = false
	c.Net.FailSwitch(sw)
	c.rec.Record(telemetry.KindSwitchFail, uint32(sw), 0, 0, 0)
	c.Routes.WithdrawAll(bgp.NodeID(sw), c.tick())
	// VIPs homed there are now SMux-served; forget the stale home.
	for vip, home := range c.hmuxHome {
		if home == sw {
			delete(c.hmuxHome, vip)
		}
	}
	c.dropReplicaOn(sw)
}

// RecoverSwitch brings a switch back. A rebooted switch loses its tables
// (§5.1), so the HMux is re-created blank; the controller re-runs
// assignment to repopulate it.
func (c *Cluster) RecoverSwitch(sw topology.SwitchID) {
	if c.switchUp[sw] {
		return
	}
	tcfg := c.tableCfg
	tcfg.SelfAddr = switchAddr(int(sw))
	c.HMuxes[sw] = hmux.New(tcfg)
	c.HMuxes[sw].SetTelemetry(c.reg, c.rec, uint32(sw))
	c.switchUp[sw] = true
	c.Net.RecoverSwitch(sw)
	c.tick()
}

// SwitchUp reports switch liveness.
func (c *Cluster) SwitchUp(sw topology.SwitchID) bool { return c.switchUp[sw] }

// Agent returns the host agent of a host address.
func (c *Cluster) Agent(host packet.Addr) (*hostagent.Agent, bool) {
	a, ok := c.agents[host]
	return a, ok
}

// Hop describes one step a packet took through the datapath.
type Hop struct {
	Kind string // "hmux", "smux", "tip", "agent"
	Node string // description of the entity
}

// Delivery is the end-to-end result of Deliver.
type Delivery struct {
	VIP    packet.Addr
	DIP    packet.Addr
	Host   packet.Addr
	Packet []byte // the packet as the server receives it
	Hops   []Hop
}

// Deliver pushes a VIP-addressed packet through the full datapath and
// returns what the backend server receives. It mutates real mux state (SMux
// connection tables) exactly as production traffic would.
func (c *Cluster) Deliver(data []byte) (Delivery, error) {
	tuple, err := packet.ExtractFiveTuple(data)
	if err != nil {
		return Delivery{}, err
	}
	nhs, _, ok := c.Routes.Lookup(tuple.Dst, c.now)
	if !ok || len(nhs) == 0 {
		return Delivery{}, ErrNoRoute
	}
	nh := nhs[int(ecmp.Hash(tuple)%uint64(len(nhs)))]

	var (
		encapped []byte
		hops     []Hop
	)
	if nh >= smuxNodeBase {
		sm := c.SMuxes[int(nh-smuxNodeBase)]
		res, err := sm.Process(data, nil)
		if err != nil {
			return Delivery{}, err
		}
		encapped = res.Packet
		hops = append(hops, Hop{Kind: "smux", Node: sm.Self().String()})
	} else {
		sw := topology.SwitchID(nh)
		if !c.switchUp[sw] {
			return Delivery{}, ErrSwitchDown
		}
		hm := c.HMuxes[sw]
		if !hm.HasVIP(tuple.Dst) {
			// FIB miss during migration: fall through to the SMux layer.
			sm := c.SMuxes[int(ecmp.Hash(tuple)%uint64(len(c.SMuxes)))]
			res, err := sm.Process(data, nil)
			if err != nil {
				return Delivery{}, err
			}
			encapped = res.Packet
			hops = append(hops, Hop{Kind: "smux", Node: sm.Self().String()})
		} else {
			res, err := hm.Process(data, nil)
			if err != nil {
				return Delivery{}, err
			}
			encapped = res.Packet
			hops = append(hops, Hop{Kind: "hmux", Node: c.Topo.Switch(sw).Name})
			// TIP indirection: the outer destination may be a TIP hosted on
			// another switch (§5.2, Figure 7).
			if tipSwitch, ok := c.tipHome(res.Encap); ok {
				res2, err := c.HMuxes[tipSwitch].Process(encapped, nil)
				if err != nil {
					return Delivery{}, err
				}
				encapped = res2.Packet
				hops = append(hops, Hop{Kind: "tip", Node: c.Topo.Switch(tipSwitch).Name})
			}
		}
	}

	// Host agent receive.
	var outer packet.IPv4
	if err := outer.DecodeFromBytes(encapped); err != nil {
		return Delivery{}, err
	}
	agent, ok := c.agents[outer.Dst]
	if !ok {
		return Delivery{}, fmt.Errorf("core: no host agent at %s", outer.Dst)
	}
	d, err := agent.Receive(encapped, nil)
	if err != nil {
		return Delivery{}, err
	}
	hops = append(hops, Hop{Kind: "agent", Node: outer.Dst.String()})
	return Delivery{VIP: d.VIP, DIP: d.DIP, Host: outer.Dst, Packet: d.Packet, Hops: hops}, nil
}

// tipHome finds the switch hosting a TIP partition.
func (c *Cluster) tipHome(addr packet.Addr) (topology.SwitchID, bool) {
	for s, hm := range c.HMuxes {
		if c.switchUp[s] && hm.HasTIP(addr) {
			return topology.SwitchID(s), true
		}
	}
	return 0, false
}

// InstallTIP programs a TIP partition on a switch and records it for
// datapath resolution.
func (c *Cluster) InstallTIP(tip packet.Addr, sw topology.SwitchID, backends []service.Backend) error {
	if !c.switchUp[sw] {
		return ErrSwitchDown
	}
	for _, b := range backends {
		if _, ok := c.agents[b.Addr]; !ok {
			c.agents[b.Addr] = c.newAgent(b.Addr)
		}
	}
	return c.HMuxes[sw].AddTIP(tip, backends)
}

// RegisterTIPBackends attaches the TIP partition's DIPs to a VIP on the host
// agents (so Receive accepts the inner packets).
func (c *Cluster) RegisterTIPBackends(vip packet.Addr, backends []service.Backend) error {
	for _, b := range backends {
		a, ok := c.agents[b.Addr]
		if !ok {
			a = c.newAgent(b.Addr)
			c.agents[b.Addr] = a
		}
		if err := a.RegisterDIP(vip, b.Addr); err != nil {
			return err
		}
	}
	return nil
}
