// Package core assembles the Duet system (paper §3, §6): a datacenter
// fabric whose switches each run an HMux, a small SMux fleet announcing the
// VIP aggregate as a backstop, host agents on the servers, a BGP-style
// routing view with longest-prefix-match preference, and the controller
// machinery (see internal/controller) that places and migrates VIPs.
//
// Cluster offers a byte-accurate datapath: Deliver pushes a real IPv4 packet
// through route lookup, mux selection, IP-in-IP encapsulation (including TIP
// indirection) and host-agent decapsulation, returning the delivery the
// destination server observes.
//
// Concurrency model (see DESIGN.md "Concurrency model"): the cluster-level
// lookup state Deliver consults — the switch-up bitmap, TIP homes, the
// host-agent map and the mux slices — is captured in an immutable snapshot
// published through an atomic pointer with a monotonically increasing epoch.
// Every control-plane mutator locks the writer mutex, updates the writer-side
// state, and republishes a fresh snapshot; Deliver loads the pointer once and
// resolves the whole packet against that one generation. The BGP table and
// the muxes publish their own generations internally, so a packet observes
// (cluster snapshot, route snapshot, mux table generation) — each complete
// and internally consistent — and never a torn read.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"duet/internal/bgp"
	"duet/internal/clock"
	"duet/internal/ecmp"
	"duet/internal/hmux"
	"duet/internal/hostagent"
	"duet/internal/netsim"
	"duet/internal/nmux"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/smux"
	"duet/internal/steer"
	"duet/internal/telemetry"
	"duet/internal/topology"
)

// Errors returned by the cluster.
var (
	ErrNoRoute      = errors.New("core: no route for destination")
	ErrVIPUnknown   = errors.New("core: VIP not configured")
	ErrVIPExists    = errors.New("core: VIP already configured")
	ErrSwitchDown   = errors.New("core: switch is down")
	ErrNoSuchSwitch = errors.New("core: no such switch")
	ErrNoHostAgent  = errors.New("core: no host agent at encap destination")
)

// smuxNodeBase offsets SMux IDs in the routing table (switches use their
// SwitchID directly).
const smuxNodeBase bgp.NodeID = 1 << 20

// nmuxNodeBase offsets NMux IDs in telemetry trace events. NMuxes never
// appear in the routing table — they front the SMux on the same server — but
// their trace records need identities distinct from both switch and SMux
// node IDs.
const nmuxNodeBase = uint32(1) << 21

// Config sizes a cluster.
type Config struct {
	Topology topology.Config
	// NumSMuxes is the backstop fleet size (use internal/provision to pick).
	NumSMuxes int
	// Aggregate is the VIP prefix the SMuxes announce.
	Aggregate packet.Prefix
	// HMuxTables overrides switch table sizes (zero = paper defaults).
	HMuxTables hmux.Config
	// SMuxCapacityPPS overrides each SMux's CPU saturation point (zero =
	// the §2.2 production default of 300K pps). The obs watchdogs compare
	// the fleet's delivered rate against the aggregate capacity.
	SMuxCapacityPPS float64
	// NMuxTableSize enables the NIC match-table tier: every SMux server's
	// NIC gets an nmux.Mux of this many entries, consulted before the SMux
	// on the delivery path. 0 disables the tier (no NMuxes are created).
	NMuxTableSize int
	// SMuxMode is the default per-connection consistency mode for VIPs
	// added to the SMux fleet (zero value: steer.ModeStateful, the
	// classic conn-table path). Per-VIP overrides go through SetVIPMode.
	SMuxMode steer.Mode
	// HopClock is the seconds clock stamping the sampled per-hop latency
	// histograms (nil: a monotonic wall clock). Distinct from the logical
	// route clock (Now/AdvanceTime): hop attribution measures real
	// processing time, but tests inject a virtual source so failover
	// traces stay deterministic end to end.
	HopClock func() float64
}

// DefaultConfig returns a cluster matching the scaled-down default fabric
// with a small SMux fleet.
func DefaultConfig() Config {
	return Config{
		Topology:  topology.DefaultConfig(),
		NumSMuxes: 8,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	}
}

// clusterSnap is one immutable generation of the lookup state Deliver
// needs. Everything in it is either deep-copied at publication (switchUp,
// tipHome, the map and slice headers) or an internally concurrency-safe
// component (the muxes, agents and route table publish their own
// generations).
type clusterSnap struct {
	epoch    uint64
	now      float64
	routes   *bgp.Table
	hmuxes   []*hmux.Mux
	smuxes   []*smux.Mux
	nmuxes   []*nmux.Mux // paired 1:1 with smuxes; empty when the tier is off
	switchUp []bool
	tipHome  map[packet.Addr]topology.SwitchID
	agents   map[packet.Addr]*hostagent.Agent
	topo     *topology.Topology
}

// Cluster is a fully wired Duet deployment. Deliver/DeliverBatch are safe
// for any number of concurrent callers; control-plane mutators serialize on
// an internal writer lock. The exported fields are wiring handles for
// control-plane code (the controller, tests, CLIs) and must not be mutated
// concurrently with Deliver except through Cluster methods.
type Cluster struct {
	Topo   *topology.Topology
	Net    *netsim.Network
	Routes *bgp.Table

	HMuxes []*hmux.Mux // per switch
	SMuxes []*smux.Mux
	// NMuxes are the NIC match-table muxes, paired 1:1 with the SMuxes on
	// the same servers (empty unless Config.NMuxTableSize > 0).
	NMuxes []*nmux.Mux
	// SMuxRacks locates the SMux servers.
	SMuxRacks []int

	// mu serializes all control-plane mutation (and netsim access — the
	// network simulator is single-writer by design).
	mu sync.Mutex

	snap    atomic.Pointer[clusterSnap]
	nowBits atomic.Uint64 // logical route clock as float64 bits

	agents map[packet.Addr]*hostagent.Agent // host addr → agent

	vips     map[packet.Addr]*service.VIP
	hmuxHome map[packet.Addr]topology.SwitchID   // VIP → switch, if assigned
	nmuxVIPs map[packet.Addr]bool                // VIPs programmed on the NIC tier
	replicas map[packet.Addr][]topology.SwitchID // §9 replicated VIPs
	tipHome  map[packet.Addr]topology.SwitchID   // TIP → hosting switch

	switchUp []bool
	tableCfg hmux.Config // per-switch table sizing, for reboot re-creation

	reg *telemetry.Registry
	rec *telemetry.Recorder

	dtel     deliverTelemetry
	ctel     collectGauges
	hopTick  atomic.Uint64  // rotates the per-hop timing sample gate
	traceSeq atomic.Uint64  // numbers sampled in-process packet journeys
	hopClock func() float64 // seconds source for sampled hop histograms
}

// deliverTelemetry is Deliver's pre-resolved instrument block. The per-hop
// histograms let the obs watchdogs localize latency inflation to a pipeline
// stage (hmux vs smux vs TIP indirection vs host agent) instead of seeing
// only end-to-end time.
type deliverTelemetry struct {
	packets, errors                    telemetry.CounterShard
	hopHMux, hopSMux, hopTIP, hopAgent *telemetry.Histogram
	hopNMux                            *telemetry.Histogram

	// Per-tier attribution: which mux tier terminated the packet (hit), and
	// how often the NIC tier was consulted but missed. hmux hits exclude
	// FIB-miss fall-throughs; nmux misses and smux hits count the same
	// packet once each when the NIC tier declines it.
	tierHMux, tierNMux, tierSMux telemetry.CounterShard
	tierNMuxMiss                 telemetry.CounterShard

	// Per-consistency-mode attribution on the SMux tier: which steering
	// mode (stateful/stateless/hybrid) served the packet, so operators can
	// see mode rollouts take traffic. Indexed by steer.Mode.
	mode [3]telemetry.CounterShard
}

// hopSampleMask times 1 in 16 packets. Reading the clock twice per hop costs
// more than the entire lookup on hosts without a vDSO fast path, so hop
// attribution is sampled; the histograms converge on the same distribution
// while the un-timed packets pay only one atomic add.
const hopSampleMask = 15

// sampleHop decides whether this packet's hops are timed.
func (c *Cluster) sampleHop() bool { return c.hopTick.Add(1)&hopSampleMask == 0 }

// newTrace mints a trace ID for a sampled in-process journey. IDs are
// always odd, so they can never collide with the wire transport's
// node<<32|seq scheme (whose low bit cycles) when events from simulated and
// socket clusters land in one obs.StitchJourneys call.
//
//duet:hotpath
func (c *Cluster) newTrace() uint64 { return c.traceSeq.Add(1)<<1 | 1 }

// traceHop records one tier's handling of a sampled packet, keyed by the
// journey's trace ID — the same KindTraceHop events the wire nodes emit, so
// obs.StitchJourneys reconstructs in-process journeys identically.
//
//duet:hotpath
func (c *Cluster) traceHop(tier telemetry.TraceTier, node uint32, dst packet.Addr, trace uint64) {
	if trace == 0 {
		return
	}
	c.rec.Record(telemetry.KindTraceHop, node, uint32(tier), uint32(dst), trace)
}

// collectGauges is the point-in-time state Collect republishes every scrape.
type collectGauges struct {
	hostUsed, hostCap     *telemetry.Gauge
	ecmpUsed, ecmpCap     *telemetry.Gauge
	tunnelUsed, tunnelCap *telemetry.Gauge
	smuxCapacity          *telemetry.Gauge
	smuxConns             *telemetry.Gauge
	nmuxUsed, nmuxCap     *telemetry.Gauge
	nmuxFlows             *telemetry.Gauge
	epoch                 *telemetry.Gauge

	// Per-flow state occupancy (satellite of the consistency-mode work:
	// conn-table growth used to be invisible until OOM) and steer-table
	// drain visibility.
	connShardMax, connBytes *telemetry.Gauge
	overlay, overlayCap     *telemetry.Gauge
	steerEpoch, steerDrains *telemetry.Gauge
}

// hopBuckets spans the in-process hop latencies (hundreds of ns) up through
// the paper's device latencies: 2µs HMux, 196µs/1ms SMux (§2.2), with room
// above for inflation the smux-latency watchdog should catch.
var hopBuckets = []float64{
	250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	topo, err := topology.New(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if cfg.NumSMuxes <= 0 {
		cfg.NumSMuxes = 1
	}
	if cfg.Aggregate.Bits == 0 && cfg.Aggregate.Addr == 0 {
		cfg.Aggregate = packet.MustParsePrefix("10.0.0.0/8")
	}
	c := &Cluster{
		Topo:     topo,
		Net:      netsim.New(topo),
		Routes:   bgp.NewTable(),
		HMuxes:   make([]*hmux.Mux, topo.NumSwitches()),
		agents:   make(map[packet.Addr]*hostagent.Agent),
		vips:     make(map[packet.Addr]*service.VIP),
		hmuxHome: make(map[packet.Addr]topology.SwitchID),
		nmuxVIPs: make(map[packet.Addr]bool),
		replicas: make(map[packet.Addr][]topology.SwitchID),
		tipHome:  make(map[packet.Addr]topology.SwitchID),
		switchUp: make([]bool, topo.NumSwitches()),
		reg:      telemetry.NewRegistry(),
		rec:      telemetry.NewRecorder(telemetry.DefaultRecorderSize),
	}
	c.hopClock = cfg.HopClock
	if c.hopClock == nil {
		c.hopClock = clock.Wall()
	}
	// Trace events carry the cluster's logical route clock; callers running
	// real time (or the testbed's virtual time) can re-clock via Telemetry().
	c.rec.SetClock(c.Now)
	c.Routes.SetTelemetry(c.reg, c.rec)
	c.dtel = deliverTelemetry{
		packets:  c.reg.Counter("core.deliver.packets").Shard(),
		errors:   c.reg.Counter("core.deliver.errors").Shard(),
		hopHMux:  c.reg.Histogram("core.deliver.hop.hmux.seconds", hopBuckets),
		hopSMux:  c.reg.Histogram("core.deliver.hop.smux.seconds", hopBuckets),
		hopTIP:   c.reg.Histogram("core.deliver.hop.tip.seconds", hopBuckets),
		hopAgent: c.reg.Histogram("core.deliver.hop.agent.seconds", hopBuckets),
		hopNMux:  c.reg.Histogram("core.deliver.hop.nmux.seconds", hopBuckets),

		tierHMux:     c.reg.Counter("core.deliver.tier.hmux").Shard(),
		tierNMux:     c.reg.Counter("core.deliver.tier.nmux").Shard(),
		tierSMux:     c.reg.Counter("core.deliver.tier.smux").Shard(),
		tierNMuxMiss: c.reg.Counter("core.deliver.tier.nmux_miss").Shard(),
	}
	for _, md := range steer.Modes() {
		//duet:allow metriclabel fixed three-mode set resolved once at construction
		c.dtel.mode[md] = c.reg.Counter("core.deliver.mode." + md.String()).Shard()
	}
	c.ctel = collectGauges{
		hostUsed:     c.reg.Gauge("hmux.tables.host_used_max"),
		hostCap:      c.reg.Gauge("hmux.tables.host_cap"),
		ecmpUsed:     c.reg.Gauge("hmux.tables.ecmp_used_max"),
		ecmpCap:      c.reg.Gauge("hmux.tables.ecmp_cap"),
		tunnelUsed:   c.reg.Gauge("hmux.tables.tunnel_used_max"),
		tunnelCap:    c.reg.Gauge("hmux.tables.tunnel_cap"),
		smuxCapacity: c.reg.Gauge("smux.capacity_pps"),
		smuxConns:    c.reg.Gauge("smux.conns_total"),
		nmuxUsed:     c.reg.Gauge("nmux.tables.used_max"),
		nmuxCap:      c.reg.Gauge("nmux.tables.cap"),
		nmuxFlows:    c.reg.Gauge("nmux.flows_total"),
		epoch:        c.reg.Gauge("core.epoch"),
		connShardMax: c.reg.Gauge("smux.conn.shard_max"),
		connBytes:    c.reg.Gauge("smux.conn.bytes"),
		overlay:      c.reg.Gauge("smux.overlay_total"),
		overlayCap:   c.reg.Gauge("smux.overlay_cap"),
		steerEpoch:   c.reg.Gauge("steer.epoch_max"),
		steerDrains:  c.reg.Gauge("steer.drains_active"),
	}
	c.tableCfg = cfg.HMuxTables
	for s := range c.HMuxes {
		tcfg := cfg.HMuxTables
		tcfg.SelfAddr = switchAddr(s)
		c.HMuxes[s] = hmux.New(tcfg)
		c.HMuxes[s].SetTelemetry(c.reg, c.rec, uint32(s))
		c.switchUp[s] = true
	}
	racks := topo.NumRacks()
	for i := 0; i < cfg.NumSMuxes; i++ {
		scfg := smux.DefaultConfig(packet.AddrFrom4(192, 168, byte(i>>8), byte(i)))
		if cfg.SMuxCapacityPPS > 0 {
			scfg.CapacityPPS = cfg.SMuxCapacityPPS
		}
		scfg.DefaultMode = cfg.SMuxMode
		sm := smux.New(scfg)
		sm.SetTelemetry(c.reg, c.rec, uint32(smuxNodeBase)+uint32(i))
		c.SMuxes = append(c.SMuxes, sm)
		c.SMuxRacks = append(c.SMuxRacks, (i*(racks/cfg.NumSMuxes+1))%racks)
		c.Routes.Announce(cfg.Aggregate, smuxNodeBase+bgp.NodeID(i), 0)
		if cfg.NMuxTableSize > 0 {
			// The NIC mux shares the SMux server's address so both tiers
			// emit identical outer sources — and the SMux's steer table, so
			// both resolve a flow to the same DIP (identical encap bytes
			// whichever tier serves it).
			nm := nmux.New(nmux.Config{
				SelfAddr:  scfg.SelfAddr,
				TableSize: cfg.NMuxTableSize,
				Steer:     sm.Steer(),
			})
			nm.SetTelemetry(c.reg, c.rec, nmuxNodeBase+uint32(i))
			c.NMuxes = append(c.NMuxes, nm)
		}
	}
	c.publishLocked()
	return c, nil
}

// publishLocked rebuilds and installs a fresh snapshot from the writer-side
// state. Must be called with c.mu held (or from New, before the cluster is
// shared) at the end of every successful mutation.
func (c *Cluster) publishLocked() {
	var epoch uint64
	if old := c.snap.Load(); old != nil {
		epoch = old.epoch + 1
	}
	s := &clusterSnap{
		epoch:    epoch,
		now:      c.nowLocked(),
		routes:   c.Routes,
		hmuxes:   append([]*hmux.Mux(nil), c.HMuxes...),
		smuxes:   append([]*smux.Mux(nil), c.SMuxes...),
		nmuxes:   append([]*nmux.Mux(nil), c.NMuxes...),
		switchUp: append([]bool(nil), c.switchUp...),
		tipHome:  make(map[packet.Addr]topology.SwitchID, len(c.tipHome)),
		agents:   make(map[packet.Addr]*hostagent.Agent, len(c.agents)),
		topo:     c.Topo,
	}
	for k, v := range c.tipHome {
		s.tipHome[k] = v
	}
	for k, v := range c.agents {
		s.agents[k] = v
	}
	c.snap.Store(s)
}

// Epoch returns the current snapshot generation; every successful
// control-plane mutation bumps it.
func (c *Cluster) Epoch() uint64 { return c.snap.Load().epoch }

// Telemetry exposes the cluster's always-on metric registry and flight
// recorder (duetctl's `top` view reads these).
func (c *Cluster) Telemetry() (*telemetry.Registry, *telemetry.Recorder) {
	return c.reg, c.rec
}

// newAgent creates and instruments a host agent.
func (c *Cluster) newAgent(hostAddr packet.Addr) *hostagent.Agent {
	a := hostagent.New(hostAddr)
	a.SetTelemetry(c.reg, c.rec, uint32(hostAddr))
	return a
}

// switchAddr derives a switch's loopback address from its ID.
func switchAddr(s int) packet.Addr {
	return packet.AddrFrom4(172, 16, byte(s>>8), byte(s))
}

func (c *Cluster) nowLocked() float64 {
	return math.Float64frombits(c.nowBits.Load())
}

func (c *Cluster) tick() float64 {
	next := c.nowLocked() + 1
	c.nowBits.Store(math.Float64bits(next))
	return next
}

// Now returns the logical route clock.
func (c *Cluster) Now() float64 { return math.Float64frombits(c.nowBits.Load()) }

// AddVIP configures a new VIP: per §5.2 it lands on the SMuxes first; the
// controller may later migrate it to an HMux.
func (c *Cluster) AddVIP(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vips[v.Addr]; ok {
		return ErrVIPExists
	}
	// Every backend gets a host agent (one host per DIP unless the caller
	// registered a virtualized host explicitly via RegisterHost). Agents are
	// wired before the SMuxes accept traffic for the VIP so a concurrent
	// Deliver never finds a mapped DIP without a host behind it.
	for _, b := range allBackends(v) {
		if _, ok := c.agents[b.Addr]; !ok {
			a := c.newAgent(b.Addr)
			if err := a.RegisterDIP(v.Addr, b.Addr); err != nil {
				return err
			}
			c.agents[b.Addr] = a
		} else if err := c.agents[b.Addr].RegisterDIP(v.Addr, b.Addr); err != nil {
			return err
		}
	}
	c.publishLocked() // expose the new agents before the VIP goes live
	for _, sm := range c.SMuxes {
		if err := sm.AddVIP(v); err != nil {
			return err
		}
	}
	cp := *v
	c.vips[v.Addr] = &cp
	c.tick()
	c.publishLocked()
	return nil
}

func allBackends(v *service.VIP) []service.Backend {
	out := append([]service.Backend(nil), v.Backends...)
	for _, pr := range v.Ports {
		out = append(out, pr.Backends...)
	}
	return out
}

// RegisterHost attaches a virtualized host running several VM DIPs for a VIP
// (Figure 6). The VIP's backend list should reference hostAddr (the HIP),
// possibly multiple times for weighting.
func (c *Cluster) RegisterHost(hostAddr packet.Addr, vip packet.Addr, vmDIPs []packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[hostAddr]
	if !ok {
		a = c.newAgent(hostAddr)
		c.agents[hostAddr] = a
	}
	for _, d := range vmDIPs {
		if err := a.RegisterDIP(vip, d); err != nil {
			return err
		}
	}
	c.publishLocked()
	return nil
}

// RemoveVIP withdraws a VIP everywhere (§5.2 "VIP removal").
func (c *Cluster) RemoveVIP(addr packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vips[addr]; !ok {
		return ErrVIPUnknown
	}
	if sw, ok := c.hmuxHome[addr]; ok {
		_ = c.HMuxes[sw].RemoveVIP(addr)
		c.Routes.Withdraw(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
		delete(c.hmuxHome, addr)
	}
	if _, ok := c.replicas[addr]; ok {
		c.withdrawReplicasLocked(addr)
	}
	if c.nmuxVIPs[addr] {
		for _, nm := range c.NMuxes {
			_ = nm.RemoveVIP(addr)
		}
		delete(c.nmuxVIPs, addr)
	}
	for _, sm := range c.SMuxes {
		_ = sm.RemoveVIP(addr)
	}
	delete(c.vips, addr)
	c.tick()
	c.publishLocked()
	return nil
}

// VIP returns the configuration of a VIP.
func (c *Cluster) VIP(addr packet.Addr) (*service.VIP, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vips[addr]
	return v, ok
}

// VIPs returns all configured VIP addresses.
func (c *Cluster) VIPs() []packet.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]packet.Addr, 0, len(c.vips))
	for a := range c.vips {
		out = append(out, a)
	}
	return out
}

// HomeOf returns the switch hosting a VIP's HMux entry, or false if the VIP
// is served by the SMuxes.
func (c *Cluster) HomeOf(addr packet.Addr) (topology.SwitchID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.hmuxHome[addr]
	return sw, ok
}

// AssignToHMux programs a VIP onto a switch and announces its /32 route —
// the raw operation underneath the controller's migration (make-after-
// withdraw happens in the controller).
func (c *Cluster) AssignToHMux(addr packet.Addr, sw topology.SwitchID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vips[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if int(sw) < 0 || int(sw) >= len(c.HMuxes) {
		return ErrNoSuchSwitch
	}
	if !c.switchUp[sw] {
		return ErrSwitchDown
	}
	if cur, ok := c.hmuxHome[addr]; ok {
		if cur == sw {
			return nil
		}
		return fmt.Errorf("core: VIP %s already on switch %d; withdraw first", addr, cur)
	}
	if c.replicas[addr] != nil {
		return fmt.Errorf("core: VIP %s is replicated; withdraw replicas first", addr)
	}
	if c.nmuxVIPs[addr] {
		return fmt.Errorf("core: VIP %s is on the NIC tier; withdraw first", addr)
	}
	if err := c.HMuxes[sw].AddVIP(v); err != nil {
		return err
	}
	c.hmuxHome[addr] = sw
	c.Routes.Announce(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
	c.publishLocked()
	return nil
}

// WithdrawFromHMux removes a VIP from its switch; traffic falls back to the
// SMuxes (the stepping-stone state of §4.2).
func (c *Cluster) WithdrawFromHMux(addr packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.hmuxHome[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if c.switchUp[sw] {
		if err := c.HMuxes[sw].RemoveVIP(addr); err != nil {
			return err
		}
	}
	c.Routes.Withdraw(packet.HostPrefix(addr), bgp.NodeID(sw), c.tick())
	delete(c.hmuxHome, addr)
	c.publishLocked()
	return nil
}

// ErrNMuxDisabled rejects NIC-tier operations on a cluster built without
// Config.NMuxTableSize.
var ErrNMuxDisabled = errors.New("core: NIC mux tier is not enabled")

// AssignToNMux programs a VIP's wildcard entries on every NIC in the fleet.
// No route changes: the VIP stays on the SMux aggregate, and packets landing
// on any SMux server hit the NIC table in front of it. Idempotent; fails
// with nmux.ErrTableFull (after rolling back partial programming) when the
// tables cannot hold the VIP.
func (c *Cluster) AssignToNMux(addr packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vips[addr]
	if !ok {
		return ErrVIPUnknown
	}
	if len(c.NMuxes) == 0 {
		return ErrNMuxDisabled
	}
	if _, onSwitch := c.hmuxHome[addr]; onSwitch {
		return fmt.Errorf("core: VIP %s is on an HMux; withdraw first", addr)
	}
	if c.nmuxVIPs[addr] {
		return nil
	}
	for i, nm := range c.NMuxes {
		if err := nm.AddVIP(v); err != nil {
			for _, prev := range c.NMuxes[:i] {
				_ = prev.RemoveVIP(addr)
			}
			return err
		}
	}
	c.nmuxVIPs[addr] = true
	c.tick()
	c.publishLocked()
	return nil
}

// WithdrawFromNMux deprograms a VIP from every NIC; its traffic is served by
// the SMuxes alone again (flows pinned in the NIC tables are dropped, but
// the SMux picks the same DIPs — shared hash — so connections survive).
func (c *Cluster) WithdrawFromNMux(addr packet.Addr) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.nmuxVIPs[addr] {
		return ErrVIPUnknown
	}
	for _, nm := range c.NMuxes {
		_ = nm.RemoveVIP(addr)
	}
	delete(c.nmuxVIPs, addr)
	c.tick()
	c.publishLocked()
	return nil
}

// NMuxHosted reports whether the VIP is programmed on the NIC tier.
func (c *Cluster) NMuxHosted(addr packet.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nmuxVIPs[addr]
}

// ReprogramNMux pushes a VIP's current backend set to every NIC in place
// (pinned flows keep their DIPs across the update). No-op for VIPs not on
// the NIC tier. If any table cannot hold the new cost, the VIP is withdrawn
// from the whole tier instead — the SMuxes keep serving it — and the
// programming error is returned.
func (c *Cluster) ReprogramNMux(v *service.VIP) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.nmuxVIPs[v.Addr] {
		return nil
	}
	for _, nm := range c.NMuxes {
		if err := nm.UpdateVIP(v); err != nil {
			for _, all := range c.NMuxes {
				_ = all.RemoveVIP(v.Addr)
			}
			delete(c.nmuxVIPs, v.Addr)
			c.tick()
			c.publishLocked()
			return err
		}
	}
	c.tick()
	c.publishLocked()
	return nil
}

// SetVIPMode switches a VIP's per-connection consistency mode on the whole
// SMux fleet (stateful conn table, stateless steer lookup, or hybrid with a
// bounded overlay — see internal/steer). The change bumps every steer-table
// epoch without opening a drain window: the lookup tables are unchanged, so
// no flow's DIP moves.
func (c *Cluster) SetVIPMode(addr packet.Addr, mode steer.Mode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vips[addr]; !ok {
		return ErrVIPUnknown
	}
	for _, sm := range c.SMuxes {
		if err := sm.SetVIPMode(addr, mode); err != nil {
			return err
		}
	}
	c.tick()
	c.publishLocked()
	return nil
}

// VIPMode returns a VIP's consistency mode on the SMux fleet.
func (c *Cluster) VIPMode(addr packet.Addr) (steer.Mode, bool) {
	snap := c.snap.Load()
	if len(snap.smuxes) == 0 {
		return 0, false
	}
	return snap.smuxes[0].ModeOf(addr)
}

// FailSwitch kills a switch: dataplane stops and all its routes are
// withdrawn (the cluster facade converges instantly; timed convergence is
// the testbed's domain).
func (c *Cluster) FailSwitch(sw topology.SwitchID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.switchUp[sw] {
		return
	}
	c.switchUp[sw] = false
	c.Net.FailSwitch(sw)
	c.rec.Record(telemetry.KindSwitchFail, uint32(sw), 0, 0, 0)
	c.Routes.WithdrawAll(bgp.NodeID(sw), c.tick())
	// VIPs homed there are now SMux-served; forget the stale home. TIP homes
	// are kept: the partition is still programmed, just unreachable until
	// recovery (Deliver reports ErrSwitchDown, as the real fabric would
	// blackhole until the controller re-installs the partition).
	for vip, home := range c.hmuxHome {
		if home == sw {
			delete(c.hmuxHome, vip)
		}
	}
	c.dropReplicaOn(sw)
	c.publishLocked()
}

// RecoverSwitch brings a switch back. A rebooted switch loses its tables
// (§5.1), so the HMux is re-created blank; the controller re-runs
// assignment to repopulate it.
func (c *Cluster) RecoverSwitch(sw topology.SwitchID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.switchUp[sw] {
		return
	}
	tcfg := c.tableCfg
	tcfg.SelfAddr = switchAddr(int(sw))
	c.HMuxes[sw] = hmux.New(tcfg)
	c.HMuxes[sw].SetTelemetry(c.reg, c.rec, uint32(sw))
	c.switchUp[sw] = true
	c.Net.RecoverSwitch(sw)
	// The reboot wiped the switch's tables, so any TIP partitions it hosted
	// are gone until reinstalled.
	for tip, home := range c.tipHome {
		if home == sw {
			delete(c.tipHome, tip)
		}
	}
	c.tick()
	c.publishLocked()
}

// SwitchUp reports switch liveness.
func (c *Cluster) SwitchUp(sw topology.SwitchID) bool {
	return c.snap.Load().switchUp[sw]
}

// Agent returns the host agent of a host address.
func (c *Cluster) Agent(host packet.Addr) (*hostagent.Agent, bool) {
	a, ok := c.snap.Load().agents[host]
	return a, ok
}

// Hop describes one step a packet took through the datapath.
type Hop struct {
	Kind string // "hmux", "nmux", "smux", "tip", "agent"
	Node string // description of the entity
}

// Delivery is the end-to-end result of Deliver.
type Delivery struct {
	VIP    packet.Addr
	DIP    packet.Addr
	Host   packet.Addr
	Packet []byte // the packet as the server receives it
	Hops   []Hop
}

// Deliver pushes a VIP-addressed packet through the full datapath and
// returns what the backend server receives. It mutates real mux state (SMux
// connection tables) exactly as production traffic would. Safe for
// concurrent callers, including concurrently with control-plane mutation:
// the whole packet resolves against one atomically published snapshot.
//
//duet:hotpath
func (c *Cluster) Deliver(data []byte) (Delivery, error) {
	d, err := c.deliver(c.snap.Load(), data)
	c.dtel.packets.Inc()
	if err != nil {
		c.dtel.errors.Inc()
	}
	return d, err
}

func (c *Cluster) deliver(snap *clusterSnap, data []byte) (Delivery, error) {
	tuple, err := packet.ExtractFiveTuple(data)
	if err != nil {
		return Delivery{}, err
	}
	hash := ecmp.Hash(tuple)
	now := c.Now()
	nh, _, ok := snap.routes.Snapshot().Pick(tuple.Dst, now, hash)
	if !ok {
		return Delivery{}, ErrNoRoute
	}

	var (
		encapped []byte
		hops     []Hop
		t0       float64
	)
	timed := c.sampleHop()
	// Timed packets double as traced packets: the same sample gate that
	// prices the per-hop histograms prices the journey events, and the hop
	// timeline is most useful with latency attribution alongside it.
	var trace uint64
	if timed {
		trace = c.newTrace()
	}
	if nh >= smuxNodeBase {
		var hop Hop
		encapped, hop, err = c.hostTier(snap, int(nh-smuxNodeBase), data, timed, tuple.Dst, trace)
		if err != nil {
			return Delivery{}, err
		}
		hops = append(hops, hop)
	} else {
		sw := topology.SwitchID(nh)
		if !snap.switchUp[sw] {
			return Delivery{}, ErrSwitchDown
		}
		hm := snap.hmuxes[sw]
		if timed {
			t0 = c.hopClock()
		}
		res, err := hm.Process(data, nil)
		if timed {
			c.dtel.hopHMux.Observe(c.hopClock() - t0)
		}
		switch {
		case errors.Is(err, hmux.ErrNotOurVIP):
			// FIB miss during migration: fall through to the host tiers.
			var hop Hop
			encapped, hop, err = c.hostTier(snap, int(hash%uint64(len(snap.smuxes))), data, timed, tuple.Dst, trace)
			if err != nil {
				return Delivery{}, err
			}
			hops = append(hops, hop)
		case err != nil:
			return Delivery{}, err
		default:
			encapped = res.Packet
			c.dtel.tierHMux.Inc()
			c.traceHop(telemetry.TraceTierHMux, uint32(sw), tuple.Dst, trace)
			hops = append(hops, Hop{Kind: "hmux", Node: snap.topo.Switch(sw).Name})
			// TIP indirection: the outer destination may be a TIP hosted on
			// another switch (§5.2, Figure 7).
			if tipSwitch, ok := snap.tipHome[res.Encap]; ok {
				if !snap.switchUp[tipSwitch] {
					return Delivery{}, ErrSwitchDown
				}
				if timed {
					t0 = c.hopClock()
				}
				res2, err := snap.hmuxes[tipSwitch].Process(encapped, nil)
				if timed {
					c.dtel.hopTIP.Observe(c.hopClock() - t0)
				}
				if err != nil {
					return Delivery{}, err
				}
				encapped = res2.Packet
				c.traceHop(telemetry.TraceTierTIP, uint32(tipSwitch), tuple.Dst, trace)
				hops = append(hops, Hop{Kind: "tip", Node: snap.topo.Switch(tipSwitch).Name})
			}
		}
	}

	// Host agent receive.
	var outer packet.IPv4
	if err := outer.DecodeFromBytes(encapped); err != nil {
		return Delivery{}, err
	}
	agent, ok := snap.agents[outer.Dst]
	if !ok {
		//duet:allow hotpath error construction on the no-agent reject path only
		return Delivery{}, fmt.Errorf("%w: %s", ErrNoHostAgent, outer.Dst)
	}
	if timed {
		t0 = c.hopClock()
	}
	d, err := agent.Receive(encapped, nil)
	if timed {
		c.dtel.hopAgent.Observe(c.hopClock() - t0)
	}
	if err != nil {
		return Delivery{}, err
	}
	c.traceHop(telemetry.TraceTierHost, uint32(outer.Dst), outer.Dst, trace)
	//duet:allow hotpath hop labels are part of the simulated Delivery result, not the wire path
	hops = append(hops, Hop{Kind: "agent", Node: outer.Dst.String()})
	return Delivery{VIP: d.VIP, DIP: d.DIP, Host: outer.Dst, Packet: d.Packet, Hops: hops}, nil
}

// hostTier processes a packet on the host mux pair at index idx: the NIC
// match table first (when the tier is enabled), falling through to the SMux
// on a table miss. Because the pair shares one self address and the ECMP
// hash, the encap bytes are identical whichever tier serves the flow — the
// fall-through is invisible to the backend.
func (c *Cluster) hostTier(snap *clusterSnap, idx int, data []byte, timed bool, dst packet.Addr, trace uint64) ([]byte, Hop, error) {
	var t0 float64
	if len(snap.nmuxes) > 0 {
		nm := snap.nmuxes[idx]
		if timed {
			t0 = c.hopClock()
		}
		res, err := nm.Process(data, nil)
		if timed {
			c.dtel.hopNMux.Observe(c.hopClock() - t0)
		}
		switch {
		case err == nil:
			c.dtel.tierNMux.Inc()
			c.traceHop(telemetry.TraceTierNMux, uint32(nm.Self()), dst, trace)
			//duet:allow hotpath hop labels are part of the simulated Delivery result, not the wire path
			return res.Packet, Hop{Kind: "nmux", Node: nm.Self().String()}, nil
		case !errors.Is(err, nmux.ErrNotOurVIP):
			return nil, Hop{}, err
		}
		c.dtel.tierNMuxMiss.Inc()
	}
	sm := snap.smuxes[idx]
	if timed {
		t0 = c.hopClock()
	}
	res, err := sm.Process(data, nil)
	if timed {
		c.dtel.hopSMux.Observe(c.hopClock() - t0)
	}
	if err != nil {
		return nil, Hop{}, err
	}
	c.dtel.tierSMux.Inc()
	c.dtel.mode[res.Mode].Inc()
	c.traceHop(telemetry.TraceTierSMux, uint32(sm.Self()), dst, trace)
	//duet:allow hotpath hop labels are part of the simulated Delivery result, not the wire path
	return res.Packet, Hop{Kind: "smux", Node: sm.Self().String()}, nil
}

// Collect republishes point-in-time gauges derived from cluster state: HMux
// table high-water occupancy across up switches against the §4.1 capacities,
// the SMux fleet's aggregate capacity and connection-table size, and the
// snapshot epoch. It is the obs scrape pipeline's collector hook — called at
// the top of every scrape tick — and performs no allocation, so the tick
// stays allocation-free in steady state.
func (c *Cluster) Collect() {
	snap := c.snap.Load()
	var hostU, hostC, ecmpU, ecmpC, tunU, tunC int
	for sw, hm := range snap.hmuxes {
		if !snap.switchUp[sw] {
			continue
		}
		st := hm.Stats()
		hostU = max(hostU, st.HostUsed)
		hostC = max(hostC, st.HostCap)
		ecmpU = max(ecmpU, st.ECMPUsed)
		ecmpC = max(ecmpC, st.ECMPCap)
		tunU = max(tunU, st.TunnelUsed)
		tunC = max(tunC, st.TunnelCap)
	}
	var capPPS float64
	var conns, shardMax, overlay, overlayCap int
	var connBytes int64
	var steerEpoch uint64
	drains := 0
	for _, sm := range snap.smuxes {
		capPPS += sm.CapacityPPS()
		// Collect doubles as the fleet's maintenance tick: idle-eviction and
		// overlay sweeps run here, on the scrape cadence, so no separate
		// timer goroutine is needed per mux.
		sm.Tick()
		st := sm.ConnStats()
		conns += st.Entries
		shardMax = max(shardMax, st.ShardMax)
		connBytes += st.Bytes
		overlay += st.Overlay
		overlayCap += st.OverlayCap
		tbl := sm.Steer()
		steerEpoch = max(steerEpoch, tbl.Epoch())
		if tbl.DrainActive() {
			drains++
		}
	}
	var nmUsed, nmCap, nmFlows int
	for _, nm := range snap.nmuxes {
		st := nm.Stats()
		nmUsed = max(nmUsed, st.Used)
		nmCap = max(nmCap, st.Cap)
		nmFlows += st.Flows
	}
	c.ctel.hostUsed.Set(int64(hostU))
	c.ctel.hostCap.Set(int64(hostC))
	c.ctel.ecmpUsed.Set(int64(ecmpU))
	c.ctel.ecmpCap.Set(int64(ecmpC))
	c.ctel.tunnelUsed.Set(int64(tunU))
	c.ctel.tunnelCap.Set(int64(tunC))
	c.ctel.smuxCapacity.Set(int64(capPPS))
	c.ctel.smuxConns.Set(int64(conns))
	c.ctel.nmuxUsed.Set(int64(nmUsed))
	c.ctel.nmuxCap.Set(int64(nmCap))
	c.ctel.nmuxFlows.Set(int64(nmFlows))
	c.ctel.epoch.Set(int64(snap.epoch))
	c.ctel.connShardMax.Set(int64(shardMax))
	c.ctel.connBytes.Set(connBytes)
	c.ctel.overlay.Set(int64(overlay))
	c.ctel.overlayCap.Set(int64(overlayCap))
	c.ctel.steerEpoch.Set(int64(steerEpoch))
	c.ctel.steerDrains.Set(int64(drains))
}

// BatchResult pairs one packet's delivery with its error.
type BatchResult struct {
	Delivery Delivery
	Err      error
}

// DeliverBatch pushes a batch of packets through the datapath on a pool of
// worker goroutines and returns per-packet results in input order. workers
// ≤ 1 runs inline. Each packet loads the current snapshot independently, so
// a batch racing control-plane churn can observe several generations — but
// every individual packet sees exactly one.
func (c *Cluster) DeliverBatch(pkts [][]byte, workers int) []BatchResult {
	results := make([]BatchResult, len(pkts))
	if workers <= 1 || len(pkts) <= 1 {
		for i, p := range pkts {
			results[i].Delivery, results[i].Err = c.Deliver(p)
		}
		return results
	}
	if workers > len(pkts) {
		workers = len(pkts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkts) {
					return
				}
				results[i].Delivery, results[i].Err = c.Deliver(pkts[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// InstallTIP programs a TIP partition on a switch and records it for
// datapath resolution.
func (c *Cluster) InstallTIP(tip packet.Addr, sw topology.SwitchID, backends []service.Backend) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.switchUp[sw] {
		return ErrSwitchDown
	}
	for _, b := range backends {
		if _, ok := c.agents[b.Addr]; !ok {
			c.agents[b.Addr] = c.newAgent(b.Addr)
		}
	}
	if err := c.HMuxes[sw].AddTIP(tip, backends); err != nil {
		return err
	}
	c.tipHome[tip] = sw
	c.publishLocked()
	return nil
}

// RegisterTIPBackends attaches the TIP partition's DIPs to a VIP on the host
// agents (so Receive accepts the inner packets).
func (c *Cluster) RegisterTIPBackends(vip packet.Addr, backends []service.Backend) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range backends {
		a, ok := c.agents[b.Addr]
		if !ok {
			a = c.newAgent(b.Addr)
			c.agents[b.Addr] = a
		}
		if err := a.RegisterDIP(vip, b.Addr); err != nil {
			return err
		}
	}
	c.publishLocked()
	return nil
}
