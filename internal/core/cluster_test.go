package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"duet/internal/bgp"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/topology"
)

func testCluster(t testing.TB) *Cluster {
	t.Helper()
	cfg := Config{
		Topology:  topology.TestbedConfig(),
		NumSMuxes: 3,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkVIP(i int, dips ...string) *service.VIP {
	bs := make([]service.Backend, len(dips))
	for j, d := range dips {
		bs[j] = service.Backend{Addr: packet.MustParseAddr(d), Weight: 1}
	}
	return &service.VIP{Addr: packet.AddrFrom4(10, 0, 0, byte(i+1)), Backends: bs}
}

func clientPkt(vip packet.Addr, i uint32) []byte {
	return packet.BuildTCP(packet.FiveTuple{
		Src: packet.AddrFrom4(30, 0, byte(i>>8), byte(i)), Dst: vip,
		SrcPort: uint16(1024 + i), DstPort: 80, Proto: packet.ProtoTCP,
	}, packet.TCPSyn, []byte("GET /"))
}

func TestDeliverViaSMux(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	counts := make(map[packet.Addr]int)
	for i := uint32(0); i < 1000; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.VIP != v.Addr {
			t.Fatalf("delivery VIP %s", d.VIP)
		}
		if len(d.Hops) != 2 || d.Hops[0].Kind != "smux" || d.Hops[1].Kind != "agent" {
			t.Fatalf("hops = %+v", d.Hops)
		}
		counts[d.DIP]++
		// The packet the server receives is addressed to the DIP.
		var ip packet.IPv4
		if err := ip.DecodeFromBytes(d.Packet); err != nil {
			t.Fatal(err)
		}
		if ip.Dst != d.DIP {
			t.Fatal("delivered packet not rewritten to DIP")
		}
	}
	for _, b := range v.Backends {
		frac := float64(counts[b.Addr]) / 1000
		if math.Abs(frac-0.5) > 0.08 {
			t.Fatalf("DIP %s got %.3f", b.Addr, frac)
		}
	}
}

func TestDeliverViaHMux(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	sw := c.Topo.TorID(0, 0)
	if err := c.AssignToHMux(v.Addr, sw); err != nil {
		t.Fatal(err)
	}
	if home, ok := c.HomeOf(v.Addr); !ok || home != sw {
		t.Fatal("HomeOf wrong")
	}
	d, err := c.Deliver(clientPkt(v.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hops[0].Kind != "hmux" {
		t.Fatalf("first hop = %+v, want hmux (LPM /32 preference)", d.Hops[0])
	}
}

func TestHMuxAndSMuxPickSameDIP(t *testing.T) {
	// The migration invariant at the cluster level: the DIP chosen for a
	// tuple must not change when the VIP moves from SMux to HMux.
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2", "100.0.0.3", "100.0.0.4")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	before := make(map[uint32]packet.Addr)
	for i := uint32(0); i < 300; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = d.DIP
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.AggID(0, 0)); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 300; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.DIP != before[i] {
			t.Fatalf("flow %d remapped %s→%s across migration", i, before[i], d.DIP)
		}
	}
}

func TestWithdrawFallsBackToSMux(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	sw := c.Topo.TorID(0, 0)
	if err := c.AssignToHMux(v.Addr, sw); err != nil {
		t.Fatal(err)
	}
	if err := c.WithdrawFromHMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	d, err := c.Deliver(clientPkt(v.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hops[0].Kind != "smux" {
		t.Fatalf("hops after withdraw = %+v", d.Hops)
	}
	if err := c.WithdrawFromHMux(v.Addr); err != ErrVIPUnknown {
		t.Fatalf("double withdraw: %v", err)
	}
}

func TestFailSwitchFailsOver(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	sw := c.Topo.TorID(0, 0)
	if err := c.AssignToHMux(v.Addr, sw); err != nil {
		t.Fatal(err)
	}
	c.FailSwitch(sw)
	if c.SwitchUp(sw) {
		t.Fatal("switch still up")
	}
	if _, ok := c.HomeOf(v.Addr); ok {
		t.Fatal("failed switch still recorded as home")
	}
	d, err := c.Deliver(clientPkt(v.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hops[0].Kind != "smux" {
		t.Fatalf("failover hops = %+v", d.Hops)
	}
	// Recovery: switch comes back empty; VIP stays on SMux until the
	// controller reassigns.
	c.RecoverSwitch(sw)
	if !c.SwitchUp(sw) {
		t.Fatal("switch did not recover")
	}
	d, err = c.Deliver(clientPkt(v.Addr, 2))
	if err != nil || d.Hops[0].Kind != "smux" {
		t.Fatalf("post-recovery delivery: %+v %v", d.Hops, err)
	}
	// Double fail/recover are no-ops.
	c.RecoverSwitch(sw)
	c.FailSwitch(sw)
	c.FailSwitch(sw)
}

func TestAssignErrors(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AssignToHMux(v.Addr, 0); err != ErrVIPUnknown {
		t.Fatalf("unknown VIP: %v", err)
	}
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVIP(v); err != ErrVIPExists {
		t.Fatalf("duplicate: %v", err)
	}
	if err := c.AssignToHMux(v.Addr, topology.SwitchID(999)); err != ErrNoSuchSwitch {
		t.Fatalf("bad switch: %v", err)
	}
	sw := c.Topo.TorID(0, 0)
	if err := c.AssignToHMux(v.Addr, sw); err != nil {
		t.Fatal(err)
	}
	// Idempotent same-switch assign.
	if err := c.AssignToHMux(v.Addr, sw); err != nil {
		t.Fatalf("same-switch reassign: %v", err)
	}
	// Direct move without withdraw is refused (the controller must use the
	// stepping stone).
	if err := c.AssignToHMux(v.Addr, c.Topo.TorID(0, 1)); err == nil {
		t.Fatal("direct move accepted")
	}
	other := c.Topo.TorID(1, 0)
	c.FailSwitch(other)
	v2 := mkVIP(1, "100.0.1.1")
	if err := c.AddVIP(v2); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(v2.Addr, other); err != ErrSwitchDown {
		t.Fatalf("down switch: %v", err)
	}
}

func TestRemoveVIP(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.TorID(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVIP(v.Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deliver(clientPkt(v.Addr, 1)); err == nil {
		t.Fatal("removed VIP still deliverable")
	}
	if err := c.RemoveVIP(v.Addr); err != ErrVIPUnknown {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDeliverNoRoute(t *testing.T) {
	c := testCluster(t)
	// Address outside the SMux aggregate.
	pkt := clientPkt(packet.MustParseAddr("99.0.0.1"), 1)
	if _, err := c.Deliver(pkt); err != ErrNoRoute {
		t.Fatalf("got %v", err)
	}
}

func TestTIPIndirectionEndToEnd(t *testing.T) {
	c := testCluster(t)
	// VIP whose "backends" are two TIPs hosted on other switches.
	tip1 := packet.MustParseAddr("20.0.0.1")
	tip2 := packet.MustParseAddr("20.0.0.2")
	v := &service.VIP{Addr: packet.AddrFrom4(10, 0, 0, 9), Backends: []service.Backend{
		{Addr: tip1, Weight: 1}, {Addr: tip2, Weight: 1},
	}}
	part1 := []service.Backend{{Addr: packet.MustParseAddr("100.0.0.1"), Weight: 1}}
	part2 := []service.Backend{{Addr: packet.MustParseAddr("100.0.0.2"), Weight: 1}}

	// The VIP must ride an HMux for TIP encapsulation (SMuxes would need the
	// flat list); install everything.
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.CoreID(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallTIP(tip1, c.Topo.AggID(0, 0), part1); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallTIP(tip2, c.Topo.AggID(1, 0), part2); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(v.Addr, part1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(v.Addr, part2); err != nil {
		t.Fatal(err)
	}

	seen := make(map[packet.Addr]bool)
	for i := uint32(0); i < 400; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Hops) != 3 || d.Hops[1].Kind != "tip" {
			t.Fatalf("hops = %+v, want hmux→tip→agent", d.Hops)
		}
		seen[d.DIP] = true
	}
	if !seen[packet.MustParseAddr("100.0.0.1")] || !seen[packet.MustParseAddr("100.0.0.2")] {
		t.Fatalf("TIP partitions not both used: %v", seen)
	}
}

func TestVirtualizedHost(t *testing.T) {
	c := testCluster(t)
	host := packet.MustParseAddr("20.0.1.1")
	vip := packet.AddrFrom4(10, 0, 0, 5)
	vms := []packet.Addr{packet.MustParseAddr("100.1.0.1"), packet.MustParseAddr("100.1.0.2")}
	// The VIP's backend is the HIP (twice, one tunnel entry per VM DIP —
	// Figure 6); the host agent fans out to the VMs.
	v := &service.VIP{Addr: vip, Backends: []service.Backend{{Addr: host, Weight: 2}}}
	if err := c.RegisterHost(host, vip, vms); err != nil {
		t.Fatal(err)
	}
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.Addr]bool)
	for i := uint32(0); i < 500; i++ {
		d, err := c.Deliver(clientPkt(vip, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.Host != host {
			t.Fatalf("host = %s", d.Host)
		}
		seen[d.DIP] = true
	}
	if !seen[vms[0]] || !seen[vms[1]] {
		t.Fatalf("VM fan-out degenerate: %v", seen)
	}
}

func TestVIPsListing(t *testing.T) {
	c := testCluster(t)
	dips := []string{"100.0.0.1", "100.0.0.2", "100.0.0.3"}
	for i := 0; i < 3; i++ {
		if err := c.AddVIP(mkVIP(i, dips[i])); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.VIPs()) != 3 {
		t.Fatalf("VIPs = %d", len(c.VIPs()))
	}
	if _, ok := c.VIP(packet.AddrFrom4(10, 0, 0, 1)); !ok {
		t.Fatal("VIP lookup failed")
	}
}

func BenchmarkDeliver(b *testing.B) {
	c := testCluster(b)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		b.Fatal(err)
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.TorID(0, 0)); err != nil {
		b.Fatal(err)
	}
	pkt := clientPkt(v.Addr, 7)
	b.ReportAllocs()
	b.SetBytes(int64(len(pkt)))
	for i := 0; i < b.N; i++ {
		if _, err := c.Deliver(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRebootWipesTables pins the §5.1 reboot semantics the chaos test
// uncovered: a recovered switch must come back with BLANK tables. A VIP
// withdrawn while its replica switch was down must be re-assignable there
// after recovery.
func TestRebootWipesTables(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	sw := c.Topo.AggID(0, 0)
	other := c.Topo.AggID(1, 0)
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{sw, other}); err != nil {
		t.Fatal(err)
	}
	// The replica switch dies; the operator withdraws the replicas while it
	// is down (only the live one can be cleaned).
	c.FailSwitch(sw)
	if err := c.WithdrawReplicas(v.Addr); err != nil {
		t.Fatal(err)
	}
	c.RecoverSwitch(sw)
	// Rebooted switch: blank tables, so re-assignment must succeed.
	if c.HMuxes[sw].HasVIP(v.Addr) {
		t.Fatal("rebooted switch kept stale tables")
	}
	if st := c.HMuxes[sw].Stats(); st.HostUsed != 0 || st.ECMPUsed != 0 || st.TunnelUsed != 0 {
		t.Fatalf("rebooted switch tables not blank: %+v", st)
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{sw}); err != nil {
		t.Fatalf("re-assignment after reboot failed: %v", err)
	}
	if _, err := c.Deliver(clientPkt(v.Addr, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestDeliverSwitchDownBlackhole models the unconverged-withdrawal window:
// the fabric still carries a /32 toward a switch that has died (the paper's
// §7.2 sub-40ms convergence gap). Deliver must surface the blackhole as
// ErrSwitchDown, not route the packet through a dead HMux.
func TestDeliverSwitchDownBlackhole(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	sw := c.Topo.AggID(0, 0)
	c.FailSwitch(sw)
	// Simulate the not-yet-withdrawn route: announce the VIP's /32 at the
	// dead switch, visible since t=0, as a converging fabric would still hold.
	c.Routes.Announce(packet.HostPrefix(v.Addr), bgp.NodeID(sw), 0)
	if _, err := c.Deliver(clientPkt(v.Addr, 1)); !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("got %v, want ErrSwitchDown", err)
	}
	// Once the controller recovers the switch, delivery resumes (the stale
	// /32 now points at a live switch with no FIB entry, which falls back to
	// the SMux layer).
	c.RecoverSwitch(sw)
	if _, err := c.Deliver(clientPkt(v.Addr, 2)); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

// TestDeliverTIPSwitchDown covers the indirection-specific blackhole: the
// VIP's home HMux is alive, but the switch hosting its TIP partition is not.
// FailSwitch deliberately keeps tipHome entries (the partition is still
// programmed, just unreachable), so Deliver must return ErrSwitchDown for
// the second hop until the controller re-installs the partition.
func TestDeliverTIPSwitchDown(t *testing.T) {
	c := testCluster(t)
	tip := packet.MustParseAddr("20.0.0.1")
	part := []service.Backend{{Addr: packet.MustParseAddr("100.0.0.1"), Weight: 1}}
	v := &service.VIP{Addr: packet.AddrFrom4(10, 0, 0, 9),
		Backends: []service.Backend{{Addr: tip, Weight: 1}}}
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.CoreID(0)); err != nil {
		t.Fatal(err)
	}
	tipSw := c.Topo.AggID(0, 0)
	if err := c.InstallTIP(tip, tipSw, part); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(v.Addr, part); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deliver(clientPkt(v.Addr, 1)); err != nil {
		t.Fatalf("healthy TIP path: %v", err)
	}
	c.FailSwitch(tipSw)
	if _, err := c.Deliver(clientPkt(v.Addr, 2)); !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("got %v, want ErrSwitchDown for dead TIP switch", err)
	}
	// Recovery wipes the rebooted switch's tables; re-installing the
	// partition restores end-to-end delivery.
	c.RecoverSwitch(tipSw)
	if err := c.InstallTIP(tip, tipSw, part); err != nil {
		t.Fatal(err)
	}
	d, err := c.Deliver(clientPkt(v.Addr, 3))
	if err != nil {
		t.Fatalf("after reinstall: %v", err)
	}
	if d.DIP != part[0].Addr {
		t.Fatalf("DIP = %s", d.DIP)
	}
}

// TestDeliverNoHostAgent models a decommissioned server whose tunnel entry
// is still installed: the encap destination resolves, but no host agent
// answers there. The error must wrap ErrNoHostAgent and name the address.
func TestDeliverNoHostAgent(t *testing.T) {
	c := testCluster(t)
	dip := packet.MustParseAddr("100.0.0.1")
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	// Decommission the server out from under the installed VIP (the test is
	// in-package: drop the agent and publish a new snapshot, exactly what a
	// host-removal control call would do).
	c.mu.Lock()
	delete(c.agents, dip)
	c.publishLocked()
	c.mu.Unlock()
	_, err := c.Deliver(clientPkt(v.Addr, 1))
	if !errors.Is(err, ErrNoHostAgent) {
		t.Fatalf("got %v, want ErrNoHostAgent", err)
	}
	if !strings.Contains(err.Error(), dip.String()) {
		t.Fatalf("error %q does not name the encap destination", err)
	}
}

// TestDeliveryHopOrdering pins the shape of Delivery.Hops for each datapath:
// smux→agent for backstop traffic, hmux→agent for assigned VIPs, and
// hmux→tip→agent for indirected ones — the order a real packet traverses
// the fabric, with no hop skipped or duplicated.
func TestDeliveryHopOrdering(t *testing.T) {
	c := testCluster(t)

	smuxVIP := mkVIP(0, "100.0.0.1")
	hmuxVIP := mkVIP(1, "100.0.1.1")
	tip := packet.MustParseAddr("20.0.0.1")
	part := []service.Backend{{Addr: packet.MustParseAddr("100.0.2.1"), Weight: 1}}
	tipVIP := &service.VIP{Addr: packet.AddrFrom4(10, 0, 0, 3),
		Backends: []service.Backend{{Addr: tip, Weight: 1}}}

	for _, v := range []*service.VIP{smuxVIP, hmuxVIP, tipVIP} {
		if err := c.AddVIP(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AssignToHMux(hmuxVIP.Addr, c.Topo.AggID(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(tipVIP.Addr, c.Topo.CoreID(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallTIP(tip, c.Topo.AggID(1, 0), part); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTIPBackends(tipVIP.Addr, part); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		vip  packet.Addr
		want []string
	}{
		{smuxVIP.Addr, []string{"smux", "agent"}},
		{hmuxVIP.Addr, []string{"hmux", "agent"}},
		{tipVIP.Addr, []string{"hmux", "tip", "agent"}},
	}
	for _, tc := range cases {
		for i := uint32(0); i < 50; i++ {
			d, err := c.Deliver(clientPkt(tc.vip, i))
			if err != nil {
				t.Fatalf("%s: %v", tc.vip, err)
			}
			if len(d.Hops) != len(tc.want) {
				t.Fatalf("%s: %d hops %+v, want %v", tc.vip, len(d.Hops), d.Hops, tc.want)
			}
			for j, kind := range tc.want {
				if d.Hops[j].Kind != kind {
					t.Fatalf("%s: hop %d = %q, want %q (hops %+v)", tc.vip, j, d.Hops[j].Kind, kind, d.Hops)
				}
				if d.Hops[j].Node == "" {
					t.Fatalf("%s: hop %d has no node name", tc.vip, j)
				}
			}
		}
	}
}
