package core

import (
	"testing"

	"duet/internal/packet"
	"duet/internal/topology"
)

func TestReplicatedVIPSplitsAcrossSwitches(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	reps := []topology.SwitchID{c.Topo.AggID(0, 0), c.Topo.AggID(1, 0)}
	if err := c.AssignReplicated(v.Addr, reps); err != nil {
		t.Fatal(err)
	}
	if got := c.Replicas(v.Addr); len(got) != 2 {
		t.Fatalf("replicas = %v", got)
	}
	// Both replica switches should receive traffic (ECMP over /32 routes).
	seen := make(map[string]int)
	for i := uint32(0); i < 2000; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops[0].Kind != "hmux" {
			t.Fatalf("replicated VIP served by %v", d.Hops[0])
		}
		seen[d.Hops[0].Node]++
	}
	if len(seen) != 2 {
		t.Fatalf("traffic used %d replicas, want 2: %v", len(seen), seen)
	}
	for name, n := range seen {
		if n < 400 {
			t.Fatalf("replica %s got only %d/2000 flows", name, n)
		}
	}
}

// TestReplicaFailureNoSMuxNoRemap is the §9 trade-off: with replication, a
// switch failure is absorbed by the surviving replica — no SMux involvement
// and, thanks to the shared hash, no connection remaps.
func TestReplicaFailureNoSMuxNoRemap(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2", "100.0.0.3")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	reps := []topology.SwitchID{c.Topo.AggID(0, 0), c.Topo.AggID(1, 0)}
	if err := c.AssignReplicated(v.Addr, reps); err != nil {
		t.Fatal(err)
	}
	before := make(map[uint32]packet.Addr)
	for i := uint32(0); i < 1000; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = d.DIP
	}
	c.FailSwitch(reps[0])
	surviving := c.Topo.Switch(reps[1]).Name
	for i := uint32(0); i < 1000; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops[0].Kind != "hmux" || d.Hops[0].Node != surviving {
			t.Fatalf("flow %d not absorbed by surviving replica: %+v", i, d.Hops[0])
		}
		if d.DIP != before[i] {
			t.Fatalf("flow %d remapped %s→%s on replica failure", i, before[i], d.DIP)
		}
	}
	if got := c.Replicas(v.Addr); len(got) != 1 || got[0] != reps[1] {
		t.Fatalf("replica bookkeeping after failure: %v", got)
	}
}

func TestReplicationErrors(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{0}); err != ErrVIPUnknown {
		t.Fatalf("unknown VIP: %v", err)
	}
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignReplicated(v.Addr, nil); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{999}); err != ErrNoSuchSwitch {
		t.Fatalf("bad switch: %v", err)
	}
	dup := c.Topo.AggID(0, 0)
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{dup, dup}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	down := c.Topo.AggID(1, 1)
	c.FailSwitch(down)
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{down}); err != ErrSwitchDown {
		t.Fatalf("down switch: %v", err)
	}

	// Single-home then replicate is refused, and vice versa.
	if err := c.AssignToHMux(v.Addr, c.Topo.AggID(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{c.Topo.AggID(1, 0)}); err == nil {
		t.Fatal("replicating a homed VIP accepted")
	}
	if err := c.WithdrawFromHMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{c.Topo.AggID(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToHMux(v.Addr, c.Topo.AggID(0, 0)); err == nil {
		t.Fatal("homing a replicated VIP accepted")
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{c.Topo.AggID(0, 1)}); err == nil {
		t.Fatal("double replication accepted")
	}
}

func TestWithdrawReplicasFallsBackToSMux(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	reps := []topology.SwitchID{c.Topo.AggID(0, 0), c.Topo.CoreID(0)}
	if err := c.AssignReplicated(v.Addr, reps); err != nil {
		t.Fatal(err)
	}
	if err := c.WithdrawReplicas(v.Addr); err != nil {
		t.Fatal(err)
	}
	d, err := c.Deliver(clientPkt(v.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hops[0].Kind != "smux" {
		t.Fatalf("after withdraw: %+v", d.Hops)
	}
	// Switch tables released.
	for _, sw := range reps {
		if c.HMuxes[sw].HasVIP(v.Addr) {
			t.Fatal("replica table entry leaked")
		}
	}
	if err := c.WithdrawReplicas(v.Addr); err != ErrVIPUnknown {
		t.Fatalf("double withdraw: %v", err)
	}
}

func TestRemoveVIPCleansReplicas(t *testing.T) {
	c := testCluster(t)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignReplicated(v.Addr, []topology.SwitchID{c.Topo.AggID(0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVIP(v.Addr); err != nil {
		t.Fatal(err)
	}
	if got := c.Replicas(v.Addr); got != nil && len(got) != 0 {
		t.Fatalf("replicas leaked: %v", got)
	}
	if c.HMuxes[c.Topo.AggID(0, 0)].HasVIP(v.Addr) {
		t.Fatal("switch table leaked")
	}
}

func TestReplicationAtomicRollback(t *testing.T) {
	// Second replica's tables are full → the whole operation rolls back.
	cfg := Config{
		Topology:  topology.TestbedConfig(),
		NumSMuxes: 2,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	}
	cfg.HMuxTables.TunnelTableSize = 2
	cfg.HMuxTables.ECMPTableSize = 4
	cfg.HMuxTables.HostTableSize = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	filler := mkVIP(5, "100.0.9.1", "100.0.9.2")
	if err := c.AddVIP(filler); err != nil {
		t.Fatal(err)
	}
	full := c.Topo.AggID(1, 0)
	if err := c.AssignToHMux(filler.Addr, full); err != nil {
		t.Fatal(err)
	}

	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	empty := c.Topo.AggID(0, 0)
	err = c.AssignReplicated(v.Addr, []topology.SwitchID{empty, full})
	if err == nil {
		t.Fatal("expected table-full error")
	}
	if c.HMuxes[empty].HasVIP(v.Addr) {
		t.Fatal("rollback left state on the first replica")
	}
	if c.Replicas(v.Addr) != nil {
		t.Fatal("rollback left replica bookkeeping")
	}
}
