package core

import (
	"math/rand"
	"testing"

	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/topology"
)

// TestChaos drives a cluster through hundreds of random control-plane
// operations — VIP add/remove, HMux assign/withdraw, replication, DIP
// add/remove, switch fail/recover — and after every step verifies the
// system invariant the paper's design guarantees: every configured VIP
// with at least one live backend is deliverable, and the chosen DIP is one
// of its current backends.
func TestChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	c, err := New(Config{
		Topology: topology.Config{
			Containers:       2,
			ToRsPerContainer: 4,
			AggsPerContainer: 2,
			Cores:            4,
			ServersPerToR:    8,
		},
		NumSMuxes: 3,
		Aggregate: packet.MustParsePrefix("10.0.0.0/8"),
	})
	if err != nil {
		t.Fatal(err)
	}

	type vipState struct {
		addr     packet.Addr
		backends map[packet.Addr]bool
	}
	vips := map[packet.Addr]*vipState{}
	nextVIP := 1
	nextDIP := 1
	failed := map[topology.SwitchID]bool{}

	mkDIP := func() packet.Addr {
		d := packet.AddrFrom4(100, byte(nextDIP>>8), byte(nextDIP), 1)
		nextDIP++
		return d
	}
	randomVIP := func() *vipState {
		for _, v := range vips {
			return v
		}
		return nil
	}
	randomSwitch := func() topology.SwitchID {
		return topology.SwitchID(rng.Intn(c.Topo.NumSwitches()))
	}

	verify := func(step int) {
		for _, v := range vips {
			if len(v.backends) == 0 {
				continue
			}
			tuple := packet.FiveTuple{
				Src: packet.AddrFrom4(30, 0, byte(step>>8), byte(step)), Dst: v.addr,
				SrcPort: uint16(1024 + step), DstPort: 80, Proto: packet.ProtoTCP,
			}
			d, err := c.Deliver(packet.BuildTCP(tuple, packet.TCPSyn, nil))
			if err != nil {
				t.Fatalf("step %d: VIP %s undeliverable: %v", step, v.addr, err)
			}
			if !v.backends[d.DIP] {
				t.Fatalf("step %d: VIP %s delivered to foreign DIP %s", step, v.addr, d.DIP)
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op <= 2 || len(vips) == 0: // add VIP
			if len(vips) > 30 {
				continue
			}
			addr := packet.AddrFrom4(10, 0, byte(nextVIP>>8), byte(nextVIP))
			nextVIP++
			n := 1 + rng.Intn(4)
			st := &vipState{addr: addr, backends: map[packet.Addr]bool{}}
			var bs []service.Backend
			for i := 0; i < n; i++ {
				d := mkDIP()
				st.backends[d] = true
				bs = append(bs, service.Backend{Addr: d, Weight: 1})
			}
			if err := c.AddVIP(&service.VIP{Addr: addr, Backends: bs}); err != nil {
				t.Fatalf("step %d: AddVIP: %v", step, err)
			}
			vips[addr] = st

		case op == 3: // remove VIP
			v := randomVIP()
			if err := c.RemoveVIP(v.addr); err != nil {
				t.Fatalf("step %d: RemoveVIP: %v", step, err)
			}
			delete(vips, v.addr)

		case op == 4 || op == 5: // assign to HMux (single or replicated)
			v := randomVIP()
			if _, on := c.HomeOf(v.addr); on {
				continue
			}
			if len(c.Replicas(v.addr)) > 0 {
				continue
			}
			sw := randomSwitch()
			if failed[sw] {
				continue
			}
			if rng.Intn(4) == 0 {
				sw2 := randomSwitch()
				if sw2 == sw || failed[sw2] {
					continue
				}
				if err := c.AssignReplicated(v.addr, []topology.SwitchID{sw, sw2}); err != nil {
					t.Fatalf("step %d: AssignReplicated: %v", step, err)
				}
			} else if err := c.AssignToHMux(v.addr, sw); err != nil {
				t.Fatalf("step %d: AssignToHMux(%d): %v", step, sw, err)
			}

		case op == 6: // withdraw
			v := randomVIP()
			if _, on := c.HomeOf(v.addr); on {
				if err := c.WithdrawFromHMux(v.addr); err != nil {
					t.Fatalf("step %d: Withdraw: %v", step, err)
				}
			} else if len(c.Replicas(v.addr)) > 0 {
				if err := c.WithdrawReplicas(v.addr); err != nil {
					t.Fatalf("step %d: WithdrawReplicas: %v", step, err)
				}
			}

		case op == 7: // remove a DIP (resilient, via mux tables)
			v := randomVIP()
			if len(v.backends) < 2 {
				continue
			}
			// Only for SMux-hosted VIPs here (the controller owns the HMux
			// bounce path; core-level removal on HMux is exercised in the
			// controller tests).
			if _, on := c.HomeOf(v.addr); on {
				continue
			}
			if len(c.Replicas(v.addr)) > 0 {
				continue
			}
			var victim packet.Addr
			for d := range v.backends {
				victim = d
				break
			}
			for _, sm := range c.SMuxes {
				if err := sm.RemoveBackend(v.addr, victim); err != nil {
					t.Fatalf("step %d: RemoveBackend: %v", step, err)
				}
			}
			// Mirror controller.RemoveDIP: the cluster's VIP config must
			// shrink too, or a later HMux assignment resurrects the DIP.
			cfg, _ := c.VIP(v.addr)
			for i, b := range cfg.Backends {
				if b.Addr == victim {
					cfg.Backends = append(cfg.Backends[:i], cfg.Backends[i+1:]...)
					break
				}
			}
			delete(v.backends, victim)

		case op == 8: // fail a switch
			if len(failed) >= 3 {
				continue
			}
			sw := randomSwitch()
			if failed[sw] {
				continue
			}
			// Keep at least one agg per container and one core alive so
			// nothing partitions (the paper's failure model never isolates
			// the fabric either).
			if wouldPartition(c.Topo, failed, sw) {
				continue
			}
			c.FailSwitch(sw)
			failed[sw] = true

		case op == 9: // recover a switch
			for sw := range failed {
				c.RecoverSwitch(sw)
				delete(failed, sw)
				break
			}
		}
		verify(step)
	}

	// Sanity: the run actually exercised a mix of states.
	if len(vips) == 0 {
		t.Fatal("chaos ended with no VIPs; vacuous")
	}
}

// wouldPartition conservatively refuses failures that could cut all paths
// of some rack: it requires ≥2 live Aggs per container and ≥2 live Cores.
func wouldPartition(topo *topology.Topology, failed map[topology.SwitchID]bool, next topology.SwitchID) bool {
	down := func(s topology.SwitchID) bool { return failed[s] || s == next }
	for c := 0; c < topo.Cfg.Containers; c++ {
		live := 0
		for j := 0; j < topo.Cfg.AggsPerContainer; j++ {
			if !down(topo.AggID(c, j)) {
				live++
			}
		}
		if live < 2 {
			return true
		}
	}
	liveCores := 0
	for i := 0; i < topo.Cfg.Cores; i++ {
		if !down(topo.CoreID(i)) {
			liveCores++
		}
	}
	if liveCores < 2 {
		return true
	}
	// ToRs host sources/DIP agents in this test; don't fail them.
	if topo.Switches[next].Kind == topology.ToR {
		return true
	}
	return false
}
