package core

import (
	"errors"
	"testing"

	"duet/internal/nmux"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/topology"
)

func testClusterNMux(t testing.TB, tableSize int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Topology:      topology.TestbedConfig(),
		NumSMuxes:     3,
		Aggregate:     packet.MustParsePrefix("10.0.0.0/8"),
		NMuxTableSize: tableSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeliverViaNMux(t *testing.T) {
	c := testClusterNMux(t, 256)
	if len(c.NMuxes) != len(c.SMuxes) {
		t.Fatalf("NMuxes = %d, want one per SMux (%d)", len(c.NMuxes), len(c.SMuxes))
	}
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	if !c.NMuxHosted(v.Addr) {
		t.Fatal("NMuxHosted = false after AssignToNMux")
	}
	reg, _ := c.Telemetry()
	for i := uint32(0); i < 500; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Hops) != 2 || d.Hops[0].Kind != "nmux" || d.Hops[1].Kind != "agent" {
			t.Fatalf("hops = %+v, want nmux → agent", d.Hops)
		}
	}
	if got := reg.Counter("core.deliver.tier.nmux").Value(); got != 500 {
		t.Fatalf("tier.nmux = %d, want 500", got)
	}
	if got := reg.Counter("core.deliver.tier.smux").Value(); got != 0 {
		t.Fatalf("tier.smux = %d, want 0", got)
	}
}

func TestDeliverNMuxMissFallsToSMux(t *testing.T) {
	c := testClusterNMux(t, 256)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	// VIP configured but NOT assigned to the NIC tier: every packet is an
	// NMux miss served by the SMux.
	reg, _ := c.Telemetry()
	for i := uint32(0); i < 200; i++ {
		d, err := c.Deliver(clientPkt(v.Addr, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops[0].Kind != "smux" {
			t.Fatalf("hops = %+v, want smux first", d.Hops)
		}
	}
	if got := reg.Counter("core.deliver.tier.nmux_miss").Value(); got != 200 {
		t.Fatalf("tier.nmux_miss = %d, want 200", got)
	}
	if got := reg.Counter("core.deliver.tier.smux").Value(); got != 200 {
		t.Fatalf("tier.smux = %d, want 200", got)
	}
}

func TestNMuxEncapIdenticalToSMux(t *testing.T) {
	// The same flow must produce byte-identical deliveries whether the NIC
	// tier serves it or the SMux does — assign, withdraw, re-deliver.
	c := testClusterNMux(t, 256)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2", "100.0.0.3")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	type obs struct {
		dip  packet.Addr
		host packet.Addr
		pkt  string
	}
	before := make([]obs, 64)
	for i := range before {
		d, err := c.Deliver(clientPkt(v.Addr, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = obs{d.DIP, d.Host, string(d.Packet)}
	}
	if err := c.WithdrawFromNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	if c.NMuxHosted(v.Addr) {
		t.Fatal("still NMux-hosted after withdraw")
	}
	for i := range before {
		d, err := c.Deliver(clientPkt(v.Addr, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops[0].Kind != "smux" {
			t.Fatalf("post-withdraw hops = %+v", d.Hops)
		}
		if d.DIP != before[i].dip || d.Host != before[i].host || string(d.Packet) != before[i].pkt {
			t.Fatalf("flow %d changed across tier withdrawal: %s → %s", i, before[i].dip, d.DIP)
		}
	}
}

func TestAssignToNMuxGuards(t *testing.T) {
	c := testClusterNMux(t, 64)
	v := mkVIP(0, "100.0.0.1")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}

	// Unknown VIP.
	if err := c.AssignToNMux(packet.AddrFrom4(10, 9, 9, 9)); !errors.Is(err, ErrVIPUnknown) {
		t.Fatalf("unknown VIP: err = %v", err)
	}
	// HMux-hosted VIPs must be withdrawn first.
	var agg topology.SwitchID = -1
	for _, sw := range c.Topo.Switches {
		if sw.Kind == topology.Agg {
			agg = sw.ID
			break
		}
	}
	if err := c.AssignToHMux(v.Addr, agg); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err == nil {
		t.Fatal("AssignToNMux should reject an HMux-hosted VIP")
	}
	if err := c.WithdrawFromHMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	// And the converse: NIC-hosted VIPs reject HMux assignment.
	if err := c.AssignToHMux(v.Addr, agg); err == nil {
		t.Fatal("AssignToHMux should reject a NIC-hosted VIP")
	}
	// Idempotent re-assign.
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatalf("re-assign: %v", err)
	}

	// Table-full rollback: a VIP too fat for the remaining space fails and
	// programs nothing.
	fat := mkVIP(1)
	for j := 0; j < 70; j++ {
		fat.Backends = append(fat.Backends, service.Backend{
			Addr: packet.AddrFrom4(100, 1, byte(j), 1), Weight: 1,
		})
	}
	if err := c.AddVIP(fat); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(fat.Addr); !errors.Is(err, nmux.ErrTableFull) {
		t.Fatalf("fat VIP: err = %v, want ErrTableFull", err)
	}
	for _, nm := range c.NMuxes {
		if nm.HasVIP(fat.Addr) {
			t.Fatal("partial programming left behind after rollback")
		}
	}
}

func TestRemoveVIPPurgesNMux(t *testing.T) {
	c := testClusterNMux(t, 256)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deliver(clientPkt(v.Addr, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveVIP(v.Addr); err != nil {
		t.Fatal(err)
	}
	for _, nm := range c.NMuxes {
		if nm.HasVIP(v.Addr) || nm.Flows() != 0 {
			t.Fatal("RemoveVIP left NIC state behind")
		}
	}
	if c.NMuxHosted(v.Addr) {
		t.Fatal("RemoveVIP left the VIP marked NIC-hosted")
	}
}

func TestCollectPublishesNMuxGauges(t *testing.T) {
	c := testClusterNMux(t, 128)
	v := mkVIP(0, "100.0.0.1", "100.0.0.2")
	if err := c.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignToNMux(v.Addr); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 50; i++ {
		if _, err := c.Deliver(clientPkt(v.Addr, i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Collect()
	reg, _ := c.Telemetry()
	if got := reg.Gauge("nmux.tables.cap").Value(); got != 128 {
		t.Fatalf("nmux.tables.cap = %d, want 128", got)
	}
	used := reg.Gauge("nmux.tables.used_max").Value()
	if used <= 3 { // wildcard cost alone is 3; flow entries must show up
		t.Fatalf("nmux.tables.used_max = %d, want > 3", used)
	}
	if flows := reg.Gauge("nmux.flows_total").Value(); flows == 0 {
		t.Fatal("nmux.flows_total = 0, want > 0")
	}
}
