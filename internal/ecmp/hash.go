// Package ecmp implements the traffic-splitting primitives Duet builds on:
// the 5-tuple flow hash, ECMP member-selection groups, Broadcom-style
// resilient hashing, and WCMP weighted splitting.
//
// A single hash function is shared by every HMux and SMux in the deployment
// (paper §3.3.1): because all muxes agree on hash(tuple) → DIP, existing
// connections survive a VIP migrating between muxes or failing over from an
// HMux to the SMux backstop.
package ecmp

import "duet/internal/packet"

// Hash computes the flow hash of a 5-tuple. It is a 64-bit FNV-1a over the
// tuple fields, chosen because it is cheap, stateless and identical across
// every component — the property Duet's connection-preserving migration
// depends on, not the specific hash family.
//
//duet:hotpath
func Hash(t packet.FiveTuple) uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix32(h, uint32(t.Src))
	h = fnvMix32(h, uint32(t.Dst))
	h = fnvMix(h, byte(t.SrcPort>>8))
	h = fnvMix(h, byte(t.SrcPort))
	h = fnvMix(h, byte(t.DstPort>>8))
	h = fnvMix(h, byte(t.DstPort))
	h = fnvMix(h, t.Proto)
	return fmix64(h)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one byte into an FNV-1a state.
func fnvMix(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// fnvMix32 folds a big-endian uint32 into an FNV-1a state.
func fnvMix32(h uint64, v uint32) uint64 {
	h = fnvMix(h, byte(v>>24))
	h = fnvMix(h, byte(v>>16))
	h = fnvMix(h, byte(v>>8))
	return fnvMix(h, byte(v))
}

// fmix64 is the murmur3 finalizer. FNV-1a alone leaves detectable structure
// in the low bits for low-entropy inputs (sequential addresses/ports), which
// would skew slot-table selection; the finalizer fully avalanches the state.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashSym computes a direction-symmetric flow hash: both directions of a
// connection map to the same value. Used for metering and flow grouping,
// never for DIP selection (DIP selection must see the client→VIP direction).
func HashSym(t packet.FiveTuple) uint64 {
	a, b := Hash(t), Hash(t.Reverse())
	if a < b {
		return a ^ b<<1
	}
	return b ^ a<<1
}
