package ecmp

import (
	"math/rand"
	"testing"
)

// refGroup is a naive reference model of the resilient-hash contract: it
// tracks only which members are alive and, per slot index, the member that
// owned it last. On removal, orphaned slots may move anywhere (we don't
// model the exact rebalance) but slots owned by survivors must not move.
// The property test drives Group and the model with the same random op
// sequence and checks the contract after every step.
type refGroup struct {
	alive map[uint32]bool
}

func TestGroupRandomOpsContract(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := NewGroup()
		ref := &refGroup{alive: make(map[uint32]bool)}
		var members []uint32
		nextID := uint32(0)

		snapshot := func() map[uint64]uint32 {
			out := make(map[uint64]uint32)
			if g.Size() == 0 {
				return out
			}
			for h := uint64(0); h < 512; h++ {
				m, err := g.Select(h)
				if err != nil {
					t.Fatal(err)
				}
				out[h] = m
			}
			return out
		}

		prev := snapshot()
		for step := 0; step < 40; step++ {
			op := rng.Intn(3)
			switch {
			case op == 0 || len(members) == 0: // add
				id := nextID
				nextID++
				g.AddWeighted(id, uint32(1+rng.Intn(3)))
				ref.alive[id] = true
				members = append(members, id)
				// Addition is NOT resilient: no per-slot stability check,
				// but every selected member must be alive.
				cur := snapshot()
				for h, m := range cur {
					if !ref.alive[m] {
						t.Fatalf("trial %d step %d: hash %d selects dead member %d", trial, step, h, m)
					}
				}
				prev = cur
			case op == 1 && len(members) > 0: // remove (resilient)
				idx := rng.Intn(len(members))
				victim := members[idx]
				members = append(members[:idx], members[idx+1:]...)
				if err := g.Remove(victim); err != nil {
					t.Fatalf("remove %d: %v", victim, err)
				}
				delete(ref.alive, victim)
				cur := snapshot()
				for h, m := range cur {
					if !ref.alive[m] {
						t.Fatalf("trial %d step %d: dead member %d selected", trial, step, m)
					}
					if prevM, ok := prev[h]; ok && prevM != victim && m != prevM {
						t.Fatalf("trial %d step %d: hash %d moved %d→%d though %d survived",
							trial, step, h, prevM, m, prevM)
					}
				}
				prev = cur
			default: // select-only step: determinism
				if len(members) == 0 {
					continue
				}
				cur := snapshot()
				for h, m := range cur {
					if prev[h] != m {
						t.Fatalf("trial %d step %d: selection changed with no mutation", trial, step)
					}
				}
			}
			// Size invariant.
			if g.Size() != len(members) {
				t.Fatalf("trial %d step %d: size %d != %d", trial, step, g.Size(), len(members))
			}
			// Slot-table accounting: all slots owned by alive members.
			total := 0
			for m, c := range g.SlotOwners() {
				if !ref.alive[m] {
					t.Fatalf("dead member %d owns %d slots", m, c)
				}
				total += c
			}
			if len(members) > 0 && total != DefaultSlots {
				t.Fatalf("slot table leaked: %d/%d", total, DefaultSlots)
			}
		}
	}
}
