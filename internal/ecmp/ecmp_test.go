package ecmp

import (
	"math"
	"testing"
	"testing/quick"

	"duet/internal/packet"
)

func tuple(i uint32) packet.FiveTuple {
	return packet.FiveTuple{
		Src:     packet.Addr(0x0a000000 + i),
		Dst:     packet.MustParseAddr("10.255.0.1"),
		SrcPort: uint16(1024 + i%50000),
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
}

func TestHashDeterministic(t *testing.T) {
	a := Hash(tuple(7))
	b := Hash(tuple(7))
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if Hash(tuple(7)) == Hash(tuple(8)) {
		t.Fatal("distinct tuples should (overwhelmingly) hash differently")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := tuple(1)
	variants := []packet.FiveTuple{base, base, base, base, base}
	variants[0].Src++
	variants[1].Dst++
	variants[2].SrcPort++
	variants[3].DstPort++
	variants[4].Proto++
	h := Hash(base)
	for i, v := range variants {
		if Hash(v) == h {
			t.Errorf("variant %d: changing one field did not change the hash", i)
		}
	}
}

func TestHashSymSymmetric(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		tup := packet.FiveTuple{Src: packet.Addr(src), Dst: packet.Addr(dst), SrcPort: sp, DstPort: dp, Proto: proto}
		return HashSym(tup) == HashSym(tup.Reverse())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 100k flows over 16 buckets should be
	// within a few percent of uniform.
	const flows, buckets = 100000, 16
	counts := make([]int, buckets)
	for i := uint32(0); i < flows; i++ {
		counts[Hash(tuple(i))%buckets]++
	}
	want := float64(flows) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d flows, want ~%.0f (±5%%)", b, c, want)
		}
	}
}

func TestGroupEqualSplit(t *testing.T) {
	g := NewGroup()
	for m := uint32(0); m < 4; m++ {
		g.Add(m)
	}
	counts := make(map[uint32]int)
	const flows = 40000
	for i := uint32(0); i < flows; i++ {
		m, err := g.SelectTuple(tuple(i))
		if err != nil {
			t.Fatal(err)
		}
		counts[m]++
	}
	for m := uint32(0); m < 4; m++ {
		frac := float64(counts[m]) / flows
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("member %d got %.3f of flows, want ~0.25", m, frac)
		}
	}
}

func TestGroupEmpty(t *testing.T) {
	g := NewGroup()
	if _, err := g.Select(1); err != ErrEmptyGroup {
		t.Fatalf("got %v, want ErrEmptyGroup", err)
	}
	if err := g.Remove(9); err != ErrMemberNotFound {
		t.Fatalf("got %v, want ErrMemberNotFound", err)
	}
}

func TestGroupRemoveToEmpty(t *testing.T) {
	g := NewGroup()
	g.Add(1)
	if err := g.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Select(42); err != ErrEmptyGroup {
		t.Fatalf("got %v, want ErrEmptyGroup", err)
	}
	if g.Size() != 0 {
		t.Fatal("size should be 0")
	}
}

// TestResilientRemoval is the core resilient-hashing property (paper §5.1):
// removing one member must not remap any flow that previously hashed to a
// surviving member.
func TestResilientRemoval(t *testing.T) {
	g := NewGroup()
	for m := uint32(0); m < 8; m++ {
		g.Add(m)
	}
	const flows = 20000
	before := make([]uint32, flows)
	for i := uint32(0); i < flows; i++ {
		m, err := g.SelectTuple(tuple(i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = m
	}
	const failed = 3
	if err := g.Remove(failed); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := uint32(0); i < flows; i++ {
		after, err := g.SelectTuple(tuple(i))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case before[i] == failed:
			if after == failed {
				t.Fatalf("flow %d still maps to removed member", i)
			}
			moved++
		case after != before[i]:
			t.Fatalf("flow %d remapped %d→%d although its member survived", i, before[i], after)
		}
	}
	if moved == 0 {
		t.Fatal("no flows belonged to the removed member; test is vacuous")
	}
}

func TestResilientRemovalProperty(t *testing.T) {
	// For any member count 2..16 and any removed index, survivors keep all
	// their slots.
	f := func(nRaw, removeRaw uint8) bool {
		n := 2 + int(nRaw%15)
		g := NewGroup()
		for m := uint32(0); m < uint32(n); m++ {
			g.Add(m)
		}
		victim := uint32(int(removeRaw) % n)
		beforeOwners := g.SlotOwners()
		if err := g.Remove(victim); err != nil {
			return false
		}
		afterOwners := g.SlotOwners()
		for m, c := range beforeOwners {
			if m == victim {
				continue
			}
			if afterOwners[m] < c {
				return false // a survivor lost slots
			}
		}
		return afterOwners[victim] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSequentialRemovals(t *testing.T) {
	g := NewGroup()
	for m := uint32(0); m < 6; m++ {
		g.Add(m)
	}
	for _, victim := range []uint32{0, 5, 2} {
		if err := g.Remove(victim); err != nil {
			t.Fatalf("remove %d: %v", victim, err)
		}
		owners := g.SlotOwners()
		if owners[victim] != 0 {
			t.Fatalf("removed member %d still owns slots", victim)
		}
		total := 0
		for _, c := range owners {
			total += c
		}
		if total != DefaultSlots {
			t.Fatalf("slot table leaked: %d owned, want %d", total, DefaultSlots)
		}
	}
	if g.Size() != 3 {
		t.Fatalf("size = %d, want 3", g.Size())
	}
}

func TestWCMPWeights(t *testing.T) {
	// Paper §5.2: faster DIPs get larger weights. 3:1 should see ~75%/25%.
	g := NewGroup()
	g.AddWeighted(100, 3)
	g.AddWeighted(200, 1)
	counts := make(map[uint32]int)
	const flows = 40000
	for i := uint32(0); i < flows; i++ {
		m, _ := g.SelectTuple(tuple(i))
		counts[m]++
	}
	frac := float64(counts[100]) / flows
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("weighted member got %.3f of flows, want ~0.75", frac)
	}
}

func TestAddWeightedZeroWeight(t *testing.T) {
	g := NewGroup()
	g.AddWeighted(1, 0) // treated as weight 1
	g.AddWeighted(2, 1)
	owners := g.SlotOwners()
	if owners[1] == 0 || owners[2] == 0 {
		t.Fatalf("zero weight not normalized: %v", owners)
	}
}

func TestMembersCopy(t *testing.T) {
	g := NewGroup()
	g.Add(1)
	g.Add(2)
	ms := g.Members()
	ms[0] = 99
	if g.Members()[0] != 1 {
		t.Fatal("Members must return a copy")
	}
}

func TestNewGroupSlotsClamp(t *testing.T) {
	g := NewGroupSlots(-4)
	g.Add(1)
	if _, err := g.Select(0); err != nil {
		t.Fatal(err)
	}
}

func TestSlotApportionmentExact(t *testing.T) {
	// With 4 equal members and 256 slots, each must own exactly 64.
	g := NewGroup()
	for m := uint32(0); m < 4; m++ {
		g.Add(m)
	}
	for m, c := range g.SlotOwners() {
		if c != DefaultSlots/4 {
			t.Errorf("member %d owns %d slots, want %d", m, c, DefaultSlots/4)
		}
	}
}

func BenchmarkHash(b *testing.B) {
	tup := tuple(12345)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hash(tup)
	}
}

func BenchmarkGroupSelect(b *testing.B) {
	g := NewGroup()
	for m := uint32(0); m < 16; m++ {
		g.Add(m)
	}
	tup := tuple(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.SelectTuple(tup); err != nil {
			b.Fatal(err)
		}
	}
}
