package ecmp

import (
	"errors"
	"fmt"

	"duet/internal/packet"
)

// Errors returned by group operations.
var (
	ErrEmptyGroup     = errors.New("ecmp: group has no members")
	ErrMemberNotFound = errors.New("ecmp: member not found")
	ErrBadWeight      = errors.New("ecmp: weight must be positive")
)

// DefaultSlots is the default resilient-hashing slot count per group. Real
// switch ASICs use a fixed small power of two per ECMP group; 256 keeps the
// remap granularity fine enough that removing one of up to 512 members only
// touches that member's slots.
const DefaultSlots = 256

// Group is an ECMP selection group implementing resilient hashing in the
// style of Broadcom Smart-Hash (paper §5.1 [2]): a fixed-size slot table maps
// hash(tuple) % slots → member. Removing a member rewrites only the failed
// member's slots, so connections to the surviving members keep their mapping.
// Adding a member rebuilds the table (resilient hashing only protects
// removal — which is exactly why Duet bounces a VIP through the SMux when
// adding a DIP, paper §5.2 "DIP addition").
type Group struct {
	members []uint32 // member IDs in insertion order (tunnel table indices, DIP ids, ...)
	weights []uint32 // parallel to members; WCMP weights, 1 = equal
	slots   []int32  // slot table; value is an index into members, -1 if empty
}

// NewGroup creates a group with the default slot count.
func NewGroup() *Group { return NewGroupSlots(DefaultSlots) }

// NewGroupSlots creates a group with a specific slot-table size.
func NewGroupSlots(slots int) *Group {
	if slots <= 0 {
		slots = DefaultSlots
	}
	g := &Group{slots: make([]int32, slots)}
	for i := range g.slots {
		g.slots[i] = -1
	}
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// Clone returns a deep copy of the group. Snapshot-published tables (hmux,
// smux) treat groups as immutable once visible to the dataplane; resilient
// member removal therefore clones the group, mutates the copy, and republishes
// it instead of writing in place.
func (g *Group) Clone() *Group {
	cp := &Group{
		members: append([]uint32(nil), g.members...),
		weights: append([]uint32(nil), g.weights...),
		slots:   append([]int32(nil), g.slots...),
	}
	return cp
}

// Members returns a copy of the member IDs in insertion order.
func (g *Group) Members() []uint32 {
	out := make([]uint32, len(g.members))
	copy(out, g.members)
	return out
}

// Add appends a member with weight 1 and rebuilds the slot table.
func (g *Group) Add(member uint32) { g.AddWeighted(member, 1) }

// AddWeighted appends a member with the given WCMP weight (paper §5.2
// "Heterogeneity among servers") and rebuilds the slot table.
func (g *Group) AddWeighted(member uint32, weight uint32) {
	if weight == 0 {
		weight = 1
	}
	g.members = append(g.members, member)
	g.weights = append(g.weights, weight)
	g.rebuild()
}

// Remove deletes a member resiliently: only slots that pointed at the
// removed member are remapped (round-robin over the survivors), so flows
// hashing to surviving members are untouched.
func (g *Group) Remove(member uint32) error {
	idx := -1
	for i, m := range g.members {
		if m == member {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrMemberNotFound
	}
	g.members = append(g.members[:idx], g.members[idx+1:]...)
	g.weights = append(g.weights[:idx], g.weights[idx+1:]...)
	if len(g.members) == 0 {
		for i := range g.slots {
			g.slots[i] = -1
		}
		return nil
	}
	// Shift the member indices stored in surviving slots, then patch only
	// the slots that pointed at the removed member.
	next := 0
	for i, s := range g.slots {
		switch {
		case s == int32(idx):
			g.slots[i] = int32(next % len(g.members))
			next++
		case s > int32(idx):
			g.slots[i] = s - 1
		}
	}
	return nil
}

// rebuild fills the slot table proportionally to member weights. This is the
// non-resilient full rehash a real ASIC performs on member addition.
func (g *Group) rebuild() {
	if len(g.members) == 0 {
		return
	}
	var total uint64
	for _, w := range g.weights {
		total += uint64(w)
	}
	// Largest-remainder apportionment of slots to members keeps the split
	// within one slot of the exact weight ratio.
	n := len(g.slots)
	counts := make([]int, len(g.members))
	rem := make([]uint64, len(g.members))
	assigned := 0
	for i, w := range g.weights {
		exact := uint64(n) * uint64(w)
		counts[i] = int(exact / total)
		rem[i] = exact % total
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = 0
		assigned++
	}
	// Interleave members across the slot table so adjacent hash values do
	// not all land on the same member.
	pos := 0
	for remaining := n; remaining > 0; {
		progressed := false
		for i := range counts {
			if counts[i] > 0 {
				g.slots[pos] = int32(i)
				pos++
				counts[i]--
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

// Select returns the member for a flow hash.
func (g *Group) Select(hash uint64) (uint32, error) {
	if len(g.members) == 0 {
		return 0, ErrEmptyGroup
	}
	s := g.slots[hash%uint64(len(g.slots))]
	if s < 0 || int(s) >= len(g.members) {
		//duet:allow hotpath error construction on the corrupt-table reject path only
		return 0, fmt.Errorf("ecmp: corrupt slot table entry %d", s)
	}
	return g.members[s], nil
}

// SelectTuple returns the member for a 5-tuple using the shared Hash.
//
//duet:hotpath
func (g *Group) SelectTuple(t packet.FiveTuple) (uint32, error) {
	return g.Select(Hash(t))
}

// SlotOwners returns, for testing and diagnostics, how many slots each
// member currently owns, keyed by member ID.
func (g *Group) SlotOwners() map[uint32]int {
	out := make(map[uint32]int, len(g.members))
	for _, s := range g.slots {
		if s >= 0 {
			out[g.members[s]]++
		}
	}
	return out
}
