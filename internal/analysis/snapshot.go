package analysis

import (
	"go/ast"
	"go/types"
)

// Snapshot enforces the copy-on-write snapshot discipline (PR 2): a
// value obtained from atomic.Pointer.Load() is an immutable published
// generation. Within a function the analyzer tracks variables bound to
// a Load() result (and aliases made by plain assignment) and flags:
//
//   - stores through the view: v.field = x, v.m[k] = x, *v = x,
//     delete(v.m, k) — mutating a published snapshot races with every
//     concurrent reader;
//   - republishing the same view: p.Store(v) / p.Swap(v) where v came
//     from a Load — copy-on-write means Store only ever takes a fresh
//     value (CompareAndSwap(old, new) may of course pass the loaded
//     value as old).
//
// The analysis is intentionally local and alias-shallow: it follows
// direct assignments, not values laundered through calls or fields.
// That catches the mistake as it is actually written and never
// second-guesses legitimate builder code working on a fresh copy.
var Snapshot = &Analyzer{
	Name: "snapshot",
	Doc: "forbids stores through atomic.Pointer.Load() views and " +
		"re-Storing a loaded view (copy-on-write or nothing)",
	Run: runSnapshot,
}

func runSnapshot(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapshotFunc(pass, fd)
		}
	}
	return nil
}

// atomicPtrMethod reports whether call is a method call named name on a
// sync/atomic.Pointer[T] receiver.
func atomicPtrMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if lockRecvName(fn.Origin()) != "Pointer" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

func checkSnapshotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// views: local objects currently bound to a Load() result.
	views := make(map[types.Object]bool)

	isViewExpr := func(e ast.Expr) bool {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				return views[obj]
			}
		}
		return false
	}
	// viewRoot unwraps selectors/indexes/derefs and reports whether the
	// root of the lvalue is a view variable.
	viewRoot := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = ast.Unparen(x.X)
			case *ast.IndexExpr:
				e = ast.Unparen(x.X)
			case *ast.StarExpr:
				e = ast.Unparen(x.X)
			case *ast.Ident:
				obj := info.Uses[x]
				return obj != nil && views[obj]
			default:
				return false
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// First: does this assignment create or alias a view?
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					rhs = ast.Unparen(rhs)
					switch {
					case isLoadCall(info, rhs):
						views[obj] = true
					case isViewExpr(rhs):
						views[obj] = true
					default:
						// Rebinding to anything else clears the taint.
						delete(views, obj)
					}
				}
			}
			// Second: is any LHS a store through a view?
			for _, lhs := range n.Lhs {
				switch ast.Unparen(lhs).(type) {
				case *ast.Ident:
					// plain rebinding, handled above
				default:
					if viewRoot(lhs) {
						pass.Reportf(lhs.Pos(),
							"store through atomic.Pointer.Load() view in %s; snapshots are immutable — copy, mutate the copy, then Store",
							fd.Name.Name)
					}
				}
			}
		case *ast.IncDecStmt:
			if _, plain := ast.Unparen(n.X).(*ast.Ident); !plain && viewRoot(n.X) {
				pass.Reportf(n.Pos(),
					"store through atomic.Pointer.Load() view in %s; snapshots are immutable — copy, mutate the copy, then Store",
					fd.Name.Name)
			}
		case *ast.CallExpr:
			// delete(v.m, k) mutates the view's map.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && viewRoot(n.Args[0]) {
					pass.Reportf(n.Pos(),
						"delete on a map reached through atomic.Pointer.Load() view in %s",
						fd.Name.Name)
				}
			}
			// p.Store(v) / p.Swap(v) republishing the loaded view.
			if atomicPtrMethod(info, n, "Store", "Swap") && len(n.Args) == 1 {
				if isViewExpr(n.Args[0]) {
					pass.Reportf(n.Pos(),
						"Store of the previously Loaded view in %s; build a fresh copy instead (copy-on-write)",
						fd.Name.Name)
				}
			}
			// CompareAndSwap(old, new): new must not be the loaded view.
			if atomicPtrMethod(info, n, "CompareAndSwap") && len(n.Args) == 2 {
				if isViewExpr(n.Args[1]) {
					pass.Reportf(n.Pos(),
						"CompareAndSwap republishes the previously Loaded view in %s; build a fresh copy instead",
						fd.Name.Name)
				}
			}
		}
		return true
	})
}

// isLoadCall reports whether expr is a call to atomic.Pointer.Load.
func isLoadCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return atomicPtrMethod(info, call, "Load")
}
