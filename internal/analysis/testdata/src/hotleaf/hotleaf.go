// Package hotleaf provides annotated and unannotated callees so the
// hotpath fixture can exercise the cross-package fact check.
package hotleaf

// Fast is proven hot: calling it from another package's hot path is
// fine because the fact below is exported to dependents.
//
//duet:hotpath
func Fast(x int) int { return x + 1 }

// Slow carries no annotation; hot callers in other packages must be
// flagged.
func Slow(x int) int { return x * 2 }
