// Package hotpath exercises the hotpath analyzer: allocation, fmt,
// locking and closure-membership rules inside //duet:hotpath roots and
// everything they statically call.
package hotpath

import (
	"fmt"
	"sync"

	"hotleaf"
)

type shard struct {
	mu    sync.Mutex
	flows map[uint64]uint32
}

type mux struct {
	mu     sync.Mutex
	shards [16]shard
}

func (m *mux) shardFor(h uint64) *shard { return &m.shards[h%16] }

//duet:hotpath
func process(m *mux, h uint64) {
	s := &m.shards[h%16]
	s.mu.Lock() // indexed shard element: allowed
	s.flows[h] = 1
	s.mu.Unlock()
	helper(m)
	_ = hotleaf.Fast(1)
	_ = hotleaf.Slow(1) // want `hot path process calls hotleaf\.Slow which is not //duet:hotpath`
}

//duet:hotpath
func processViaHandle(m *mux, h uint64) {
	s := m.shardFor(h)
	s.mu.Lock() // shard-handle call: allowed
	s.flows[h] = 2
	s.mu.Unlock()
}

// helper is unannotated but reached from process, so it is checked as
// part of the hot closure.
func helper(m *mux) {
	m.mu.Lock() // want `unsharded Mutex\.Lock in hot path helper`
	defer m.mu.Unlock()
	fmt.Println("per-packet logging") // want `fmt\.Println call in hot path helper`
	scratch := make(map[int]int)      // want `map allocated in hot path helper`
	scratch[1] = 1
	f := func() {} // want `closure allocated in hot path helper`
	f()
	var x int
	_ = any(x) // want `conversion to interface type any in hot path helper`
}

// coldRepair is reachable from a hot root but exempted wholesale: a
// documented slow path.
//
//duet:allow hotpath fixture cold path is exempt by doc-comment allow
func coldRepair(m *mux) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Println("rebuilding")
}

//duet:hotpath
func entry(m *mux) {
	coldRepair(m)
	m.mu.Lock() //duet:allow hotpath fixture exercises the line escape hatch
	m.mu.Unlock()
}

// unreached is outside every hot closure; nothing here is flagged.
func unreached() {
	fmt.Println("control plane")
	_ = map[string]int{"a": 1}
}
