// Package noclock exercises the noclock analyzer: ambient clock reads
// are flagged, timer-method calls and annotated escapes are not.
package noclock

import "time"

func ambient() time.Time {
	return time.Now() // want `direct time\.Now call`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `direct time\.Sleep call`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `direct time\.Since call`
}

func ticking() {
	t := time.NewTicker(time.Second) // want `direct time\.NewTicker call`
	defer t.Stop()
	t.Reset(2 * time.Second) // methods on timers are fine
}

func waiting() {
	select {
	case <-time.After(time.Second): // want `direct time\.After call`
	default:
	}
}

func arithmetic(d time.Duration) time.Duration {
	return d + 5*time.Millisecond // duration math never reads the clock
}

func escapeHatchTrailing() time.Time {
	return time.Now() //duet:allow noclock fixture exercises the trailing escape hatch
}

func escapeHatchStandalone() {
	//duet:allow noclock fixture exercises the standalone escape hatch
	time.Sleep(time.Millisecond)
}
