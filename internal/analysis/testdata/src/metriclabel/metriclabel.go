// Package metriclabel exercises the metriclabel analyzer: instruments
// are registered once with constant names, never resolved per packet.
package metriclabel

import "telemetry"

const packetsIn = "packets.in"

func setup(r *telemetry.Registry, suffix string) {
	_ = r.Counter(packetsIn)
	_ = r.Counter("drops.total")
	_ = r.Counter("drops." + suffix) // want `telemetry Counter registered with non-constant name in setup`
	_ = r.Gauge(gaugeName())         // want `telemetry Gauge registered with non-constant name in setup`
}

func setupLoop(r *telemetry.Registry) {
	for _, mode := range []string{"stateful", "stateless", "hybrid"} {
		//duet:allow metriclabel fixture builds a fixed set in a loop
		_ = r.Counter("mode." + mode)
	}
}

func gaugeName() string { return "g" }

//duet:hotpath
func process(r *telemetry.Registry) {
	c := r.Counter(packetsIn) // want `telemetry registry lookup Counter\(\.\.\.\) in hot path process`
	c.Inc()
}

// preResolved is the blessed pattern: the handle is resolved at setup
// and the hot path only touches it.
type pipeline struct{ packets *telemetry.Counter }

func newPipeline(r *telemetry.Registry) *pipeline {
	return &pipeline{packets: r.Counter(packetsIn)}
}

//duet:hotpath
func (p *pipeline) run() { p.packets.Inc() }
