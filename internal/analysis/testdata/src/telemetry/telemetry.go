// Package telemetry is a miniature stub of duet/internal/telemetry —
// just the Registry lookup surface — so fixtures can exercise the
// metriclabel analyzer (the real analyzer matches the type by name).
package telemetry

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

type Gauge struct{ v int64 }

type Histogram struct{ n uint64 }

type Registry struct {
	counters map[string]*Counter
}

func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }
