// Package snapshot exercises the snapshot analyzer: values loaded from
// an atomic.Pointer are immutable published generations.
package snapshot

import "sync/atomic"

type table struct {
	m map[string]int
	n int
}

type holder struct {
	p atomic.Pointer[table]
}

func mutateView(h *holder) {
	v := h.p.Load()
	v.m["k"] = 1     // want `store through atomic\.Pointer\.Load\(\) view in mutateView`
	v.n = 2          // want `store through atomic\.Pointer\.Load\(\) view in mutateView`
	v.n++            // want `store through atomic\.Pointer\.Load\(\) view in mutateView`
	delete(v.m, "k") // want `delete on a map reached through atomic\.Pointer\.Load\(\) view`
}

func mutateAlias(h *holder) {
	v := h.p.Load()
	w := v
	w.n = 1 // want `store through atomic\.Pointer\.Load\(\) view in mutateAlias`
}

func republish(h *holder) {
	v := h.p.Load()
	h.p.Store(v)             // want `Store of the previously Loaded view in republish`
	h.p.Swap(v)              // want `Store of the previously Loaded view in republish`
	h.p.CompareAndSwap(v, v) // want `CompareAndSwap republishes the previously Loaded view in republish`
}

// copyOnWrite is the blessed pattern: fresh copy, mutate, publish.
func copyOnWrite(h *holder) {
	v := h.p.Load()
	cp := &table{m: make(map[string]int, len(v.m)), n: v.n}
	for k, val := range v.m {
		cp.m[k] = val
	}
	cp.m["k"] = 1
	cp.n++
	h.p.CompareAndSwap(v, cp) // loaded view as the old value is fine
	h.p.Store(cp)
}

// rebound shows taint clearing: after v is rebound to a fresh value,
// stores through it are fine.
func rebound(h *holder) {
	v := h.p.Load()
	v = &table{m: map[string]int{}}
	v.n = 3
	h.p.Store(v)
}

func lockGuarded(h *holder) {
	v := h.p.Load()
	//duet:allow snapshot fixture mirrors a lock-guarded mutable member
	v.n = 9
}
