package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ClockPackage is the one package allowed to read the ambient wall
// clock: it owns the constructors everything else injects.
const ClockPackage = "duet/internal/clock"

// ambientClockFuncs are the package-level time functions that read or
// schedule against the process-global clock. time.Time/time.Duration
// arithmetic is fine — only the ambient sources are fenced.
var ambientClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoClock enforces the injectable-clock rule (PR 1): all time must flow
// through injected `func() float64` clocks so failover traces and churn
// tests stay deterministic. Direct calls to time.Now, time.Sleep,
// time.Since, time.After and friends are flagged everywhere except the
// clock-constructor package itself (duet/internal/clock) and _test
// files. Code that genuinely needs wall time — socket deadlines,
// interactive CLI polling — carries a //duet:allow noclock comment with
// the reason.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "flags direct time.Now/Sleep/Since/After calls outside the " +
		"injectable-clock constructor package duet/internal/clock",
	Run: runNoClock,
}

func runNoClock(pass *Pass) error {
	if pass.Pkg.Path() == ClockPackage {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !ambientClockFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods like (*Timer).Reset are fine
			}
			pass.Reportf(call.Pos(),
				"direct time.%s call; inject a clock (clock.Wall, cfg.Clock) or annotate //duet:allow noclock <reason>",
				fn.Name())
			return true
		})
	}
	return nil
}

// isTestFile reports whether the file's name ends in _test.go. The
// driver normally excludes test files, but analysistest fixtures and
// future callers may include them; noclock-style rules don't apply
// there.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
