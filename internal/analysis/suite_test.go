package analysis_test

import (
	"testing"

	"duet/internal/analysis"
	"duet/internal/analysis/analysistest"
)

func TestNoClockAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.NoClock}, "noclock")
}

func TestHotPathAnalyzer(t *testing.T) {
	// hotleaf first: facts flow dependency → dependent, same as the
	// real driver's go list -deps ordering.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.HotPath}, "hotleaf", "hotpath")
}

func TestSnapshotAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.Snapshot}, "snapshot")
}

func TestMetricLabelAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.MetricLabel}, "telemetry", "metriclabel")
}

func TestSuite(t *testing.T) {
	suite := analysis.Suite()
	if len(suite) != 4 {
		t.Fatalf("Suite() has %d analyzers, want 4", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely declared", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
