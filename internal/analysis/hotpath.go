package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the zero-alloc/lock-free dataplane discipline (PR
// 1/2) on functions annotated //duet:hotpath and everything they
// statically call. Inside the hot closure the analyzer flags:
//
//   - map allocation (make(map...) or a map composite literal) — per
//     packet map churn is how the seed's conn table used to behave
//     before sharding;
//   - closures (func literals) — they escape and allocate;
//   - any call into fmt — fmt formats through reflection and interface
//     boxing;
//   - taking an unsharded mutex: (*sync.Mutex).Lock, (*sync.RWMutex).
//     Lock/RLock and the Try variants, unless the lock provably lives
//     in an element of a shard array/slice (the conn-table pattern
//     `s := &m.shards[i]; s.mu.Lock()`) or the receiver was obtained
//     from a shard-handle call (`s := m.shardFor(h)` — any callee whose
//     name contains "shard");
//   - explicit conversions to interface types — boxing on the packet
//     path;
//   - static calls to functions in this module that are not themselves
//     //duet:hotpath (cross-package callees prove it via exported
//     facts) — the closure must stay closed.
//
// Dynamic calls (interface methods, stored func values like injected
// clocks) cannot be resolved statically and are not followed; the
// AllocsPerRun gates in the package tests remain the runtime backstop.
//
// A //duet:allow hotpath <reason> line in a function's doc comment
// exempts the whole declaration: the function is excluded from the hot
// closure (its body is not checked, and hot callers may call it without
// a diagnostic). Use it for documented slow paths reachable from the
// packet path — once-per-flow repair work, control-plane fallbacks.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "enforces the zero-alloc/lock-free discipline in //duet:hotpath " +
		"functions and their static call closure",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	decls, hot := hotClosure(pass)
	// Publish facts first so dependent packages (and same-run
	// re-checks) see every hot function, annotated or reached.
	for fn := range hot {
		pass.ExportObjectFact(fn, "hotpath")
	}
	for fn := range hot {
		checkHotFunc(pass, decls[fn])
	}
	return nil
}

// hotClosure computes the package's hot set: functions annotated
// //duet:hotpath plus everything they transitively call within the
// package. Returns the FuncDecl for every package function and the hot
// membership set.
func hotClosure(pass *Pass) (map[*types.Func]*ast.FuncDecl, map[*types.Func]bool) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if hasDirective(fd.Doc, "//duet:hotpath") {
				roots = append(roots, fn)
			}
		}
	}
	hot := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if hot[fn] {
			return
		}
		hot[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			callee = callee.Origin()
			if cd, local := decls[callee]; local && !declExempt(cd) {
				visit(callee)
			}
			return true
		})
	}
	for _, fn := range roots {
		visit(fn)
	}
	return decls, hot
}

// declExempt reports whether a function's doc comment carries a
// //duet:allow hotpath line, opting the whole declaration out of the
// hot closure (a documented slow path off the packet steady state).
func declExempt(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//duet:allow hotpath") {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot function's body for discipline violations.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	if fd == nil || fd.Body == nil || declExempt(fd) {
		return
	}
	name := fd.Name.Name
	shardVars := collectShardVars(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in hot path %s", name)
			return false // contents are off the static path anyway
		case *ast.CompositeLit:
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map allocated in hot path %s", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, n, shardVars)
		}
		return true
	})
}

func checkHotCall(pass *Pass, where string, call *ast.CallExpr, shardVars map[types.Object]bool) {
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				if b, ok := at.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
					pass.Reportf(call.Pos(), "conversion to interface type %s in hot path %s",
						tv.Type.String(), where)
				}
			}
		}
		return
	}
	// make(map[...]...) allocates.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(call.Pos(), "map allocated in hot path %s", where)
				}
			}
		}
		return
	}
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return // dynamic call, builtin, or universe (error.Error)
	}
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // dynamic dispatch: not statically resolvable
		}
	}
	switch fn.Pkg().Path() {
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s", fn.Name(), where)
		return
	case "sync":
		if isLockName(fn.Name()) && isSyncLockType(fn) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				isShardedLock(pass, sel.X, shardVars) {
				return
			}
			pass.Reportf(call.Pos(),
				"unsharded %s.%s in hot path %s (shard the lock or annotate //duet:allow hotpath <reason>)",
				lockRecvName(fn), fn.Name(), where)
		}
		return
	}
	// Calls that stay inside the module must stay inside the hot
	// closure: same-package callees were visited by hotClosure; other
	// module packages prove it with an exported //duet:hotpath fact.
	if fn.Pkg().Path() != pass.Pkg.Path() &&
		pass.ModulePkgs != nil && pass.ModulePkgs(fn.Pkg().Path()) &&
		!pass.HasObjectFact(fn, "hotpath") {
		pass.Reportf(call.Pos(),
			"hot path %s calls %s.%s which is not //duet:hotpath",
			where, fn.Pkg().Name(), callName(fn))
	}
}

func isLockName(name string) bool {
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// isSyncLockType reports whether fn is a method of sync.Mutex or
// sync.RWMutex.
func isSyncLockType(fn *types.Func) bool {
	return lockRecvName(fn) == "Mutex" || lockRecvName(fn) == "RWMutex"
}

func lockRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func callName(fn *types.Func) string {
	if recv := lockRecvName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// collectShardVars finds local variables bound to an element of an
// array or slice (`s := &m.shards[i]` / `s := m.shards[i]`): locks
// reached through them are per-shard by construction.
func collectShardVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isIndexedElem(rhs) && !isShardCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

// isShardCall reports whether expr calls a shard-handle accessor —
// any function or method whose name contains "shard" (`m.shardFor(h)`,
// `shardOf(key)`). Locks behind such handles are per-shard by the
// naming convention this repo follows.
func isShardCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "shard")
}

// isIndexedElem reports whether expr is arr[i] or &arr[i].
func isIndexedElem(expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.IndexExpr)
	return ok
}

// isShardedLock reports whether the lock receiver expression is rooted
// at a shard variable or itself contains an index step (m.shards[i].mu).
func isShardedLock(pass *Pass, recv ast.Expr, shardVars map[types.Object]bool) bool {
	e := ast.Unparen(recv)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			return true
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil && shardVars[obj] {
				return true
			}
			return false
		default:
			return false
		}
	}
}
