package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricLabel enforces the telemetry registration discipline (PR 1):
// counters, gauges and histograms are registered once, by constant
// name, at setup time — never resolved per packet. The registry lookup
// walks a map under a lock; the hot path holds pre-resolved
// CounterShard/Gauge handles instead (the SetTelemetry pattern).
//
// Flagged:
//
//   - Registry.Counter/Gauge/Histogram calls whose name argument is not
//     a compile-time constant — dynamically composed names defeat
//     grepability and hint at per-request lookups (a fixed set built in
//     a setup loop carries //duet:allow metriclabel with the reason);
//   - any Registry lookup inside a //duet:hotpath function or its
//     static call closure.
//
// The Registry type is matched by name (type Registry in a package
// named telemetry), so fixtures can stub it.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc: "telemetry instruments must be registered with constant names " +
		"at init, never looked up per packet",
	Run: runMetricLabel,
}

// registryLookupMethods are the name-resolving entry points on
// telemetry.Registry.
var registryLookupMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runMetricLabel(pass *Pass) error {
	_, hot := hotClosure(pass)
	hotDecl := func(fd *ast.FuncDecl) bool {
		if fd == nil || fd.Name == nil {
			return false
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		return ok && hot[fn]
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inHot := hotDecl(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.TypesInfo, call)
				if fn == nil || !isRegistryLookup(fn) {
					return true
				}
				if inHot {
					pass.Reportf(call.Pos(),
						"telemetry registry lookup %s(...) in hot path %s; pre-resolve the handle at setup (SetTelemetry pattern)",
						fn.Name(), fd.Name.Name)
				}
				if len(call.Args) > 0 {
					if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || tv.Value == nil {
						pass.Reportf(call.Args[0].Pos(),
							"telemetry %s registered with non-constant name in %s; use a constant (or //duet:allow metriclabel <reason> for a fixed set built in a loop)",
							fn.Name(), fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// isRegistryLookup reports whether fn is a lookup method on a type
// named Registry in a package named telemetry.
func isRegistryLookup(fn *types.Func) bool {
	if !registryLookupMethods[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Name() != "telemetry" && !strings.HasSuffix(fn.Pkg().Path(), "/telemetry") {
		return false
	}
	return lockRecvName(fn.Origin()) == "Registry"
}
