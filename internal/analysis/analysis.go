// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis: just enough framework to write
// repo-specific vet rules (see noclock.go, hotpath.go, snapshot.go,
// metriclabel.go) and run them over type-checked packages.
//
// The x/tools module is deliberately not a dependency — the repo builds
// offline with the bare toolchain — so the few pieces duetvet needs
// (Analyzer/Pass/Diagnostic, cross-package facts, suppression comments)
// are reimplemented here against go/ast and go/types.
//
// Two comment directives drive the suite:
//
//	//duet:hotpath
//	    on the doc comment of a function marks it a dataplane hot-path
//	    root; the hotpath analyzer checks it and everything it
//	    statically calls (see hotpath.go).
//
//	//duet:allow <rule> <reason>
//	    suppresses diagnostics of <rule> on the same line, or on the
//	    line immediately below when the comment stands alone. The reason
//	    is mandatory: an escape hatch without a recorded justification
//	    is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named rule.
type Analyzer struct {
	// Name identifies the rule in output and in //duet:allow comments.
	Name string
	// Doc is a one-paragraph description, shown by duetvet -help.
	Doc string
	// Run analyzes one package. Packages are presented in dependency
	// order, so facts exported by a dependency are visible here.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePkgs reports whether an import path belongs to the analysis
	// universe (the duet module for duetvet, the fixture tree for
	// analysistest). Rules that require callees to carry facts only
	// apply it to universe packages — external code cannot be annotated.
	ModulePkgs func(path string) bool

	facts   *FactStore
	allow   *allowIndex
	diags   *[]Diagnostic
	errDiag func(Diagnostic)
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an //duet:allow comment for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact publishes a fact about a package-level object (or
// method) for passes over dependent packages. Facts are string-keyed by
// package path and object name, so an object re-imported from export
// data matches the one seen in source.
func (p *Pass) ExportObjectFact(obj types.Object, fact string) {
	p.facts.put(p.Analyzer.Name, ObjectKey(obj), fact)
}

// HasObjectFact reports whether fact was exported for obj by this
// analyzer during this run (possibly while analyzing a dependency).
func (p *Pass) HasObjectFact(obj types.Object, fact string) bool {
	return p.facts.has(p.Analyzer.Name, ObjectKey(obj), fact)
}

// HasFactFrom reports whether another analyzer exported fact for obj.
func (p *Pass) HasFactFrom(analyzer string, obj types.Object, fact string) bool {
	return p.facts.has(analyzer, ObjectKey(obj), fact)
}

// ObjectKey names an object stably across source and export-data views
// of the same package: "path.Name" for package-level objects,
// "path.(Recv).Name" for methods.
func ObjectKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		// Generic instantiations share the origin's identity.
		fn = fn.Origin()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			name := "?"
			if named, ok := recv.(*types.Named); ok {
				name = named.Obj().Name()
			}
			return pkg + ".(" + name + ")." + fn.Name()
		}
		return pkg + "." + fn.Name()
	}
	return pkg + "." + obj.Name()
}

// A FactStore carries exported facts across packages for one run of the
// suite. Keys are (analyzer, object, fact) triples.
type FactStore struct {
	m map[string]bool
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[string]bool)} }

func (s *FactStore) put(analyzer, obj, fact string) {
	s.m[analyzer+"\x00"+obj+"\x00"+fact] = true
}

func (s *FactStore) has(analyzer, obj, fact string) bool {
	return s.m[analyzer+"\x00"+obj+"\x00"+fact]
}

// RunPackage runs each analyzer over one type-checked package,
// appending findings to diags. The caller presents packages in
// dependency order and reuses facts across calls.
func RunPackage(
	analyzers []*Analyzer,
	fset *token.FileSet,
	files []*ast.File,
	pkg *types.Package,
	info *types.Info,
	modulePkgs func(string) bool,
	facts *FactStore,
	diags *[]Diagnostic,
) error {
	allow := buildAllowIndex(fset, files)
	for _, d := range allow.malformed {
		*diags = append(*diags, d)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			ModulePkgs: modulePkgs,
			facts:      facts,
			allow:      allow,
			diags:      diags,
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", pkg.Path(), a.Name, err)
		}
	}
	return nil
}

// allowIndex maps file → line → set of rule names suppressed there.
type allowIndex struct {
	byFile    map[string]map[int][]string
	malformed []Diagnostic
}

// buildAllowIndex scans comments for //duet:allow directives. A
// directive suppresses its own line and the line below it, so both the
// trailing form (`code() //duet:allow rule reason`) and the standalone
// form (comment above the code) work.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//duet:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "//duet:allow needs a rule name and a reason",
					})
					continue
				}
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  fmt.Sprintf("//duet:allow %s needs a reason", fields[0]),
					})
					continue
				}
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx.byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
			}
		}
	}
	return idx
}

func (idx *allowIndex) allowed(rule string, pos token.Position) bool {
	for _, r := range idx.byFile[pos.Filename][pos.Line] {
		if r == rule {
			return true
		}
	}
	return false
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Suite returns every duetvet analyzer.
func Suite() []*Analyzer {
	return []*Analyzer{NoClock, HotPath, Snapshot, MetricLabel}
}

// calleeOf resolves the *types.Func statically called by a call
// expression, or nil for dynamic calls (interface methods resolve to
// their interface *types.Func — the caller decides what to do with
// those), conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// hasDirective reports whether a comment group contains the given
// //duet:... directive on a line of its own.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
