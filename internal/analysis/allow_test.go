package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func f() {
	a() //duet:allow noclock deadline needs wall time
	b()
	//duet:allow hotpath standalone form covers the next line
	c()
	d() //duet:allow snapshot
	e() //duet:allow
}

func a() {}
func b() {}
func c() {}
func d() {}
func e() {}
`

func TestAllowIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildAllowIndex(fset, []*ast.File{f})

	at := func(line int) token.Position {
		return token.Position{Filename: "allow.go", Line: line}
	}
	// Trailing form: own line suppressed, and the line below it too.
	if !idx.allowed("noclock", at(4)) {
		t.Error("trailing allow does not cover its own line")
	}
	if !idx.allowed("noclock", at(5)) {
		t.Error("trailing allow does not cover the next line")
	}
	// Standalone form: the line below the comment.
	if !idx.allowed("hotpath", at(7)) {
		t.Error("standalone allow does not cover the next line")
	}
	// Wrong rule or uncovered line: not suppressed.
	if idx.allowed("noclock", at(7)) {
		t.Error("allow leaked across rules")
	}
	if idx.allowed("hotpath", at(4)) {
		t.Error("allow leaked across lines")
	}

	// Missing reason and missing rule are malformed, each reported once.
	if len(idx.malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(idx.malformed), idx.malformed)
	}
	if got := idx.malformed[0].Message; got != "//duet:allow snapshot needs a reason" {
		t.Errorf("malformed[0] = %q", got)
	}
	if got := idx.malformed[1].Message; got != "//duet:allow needs a rule name and a reason" {
		t.Errorf("malformed[1] = %q", got)
	}
}
