// Package analysistest runs duetvet analyzers over fixture packages
// and checks their findings against expectations written in the
// fixtures themselves — a stdlib-only miniature of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <dir>/src/<pkg>/*.go. A line that should trigger
// a diagnostic carries a trailing comment of the form
//
//	// want `regexp`
//
// (multiple patterns mean multiple diagnostics on that line; patterns
// may also be double-quoted Go strings). Run fails the test for every
// diagnostic with no matching want and every want with no matching
// diagnostic.
package analysistest

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"duet/internal/analysis"
	"duet/internal/analysis/driver"
)

// Run type-checks the named fixture packages (dependencies first — the
// same contract the real driver gets from `go list -deps`), runs the
// analyzers over each with a shared fact store, and compares the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()

	fset := token.NewFileSet()
	fixtureSet := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		fixtureSet[p] = true
	}

	// Parse every fixture package up front so the stdlib side of the
	// import graph is known before type-checking begins.
	parsed := make(map[string][]*ast.File, len(pkgs))
	stdImports := make(map[string]bool)
	for _, p := range pkgs {
		files, err := parseFixture(fset, dir, p)
		if err != nil {
			t.Fatalf("fixture %s: %v", p, err)
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil && !fixtureSet[ip] {
					stdImports[ip] = true
				}
			}
		}
		parsed[p] = files
	}

	// Stdlib imports resolve from compiler export data;
	// fixture-to-fixture imports resolve against packages checked
	// earlier in the list.
	exports := map[string]string{}
	if len(stdImports) > 0 {
		std := make([]string, 0, len(stdImports))
		for ip := range stdImports {
			std = append(std, ip)
		}
		sort.Strings(std)
		m, err := driver.StdExports(std...)
		if err != nil {
			t.Fatalf("loading stdlib export data: %v", err)
		}
		exports = m
	}
	imp := &fixtureImporter{
		fixtures: make(map[string]*types.Package),
		std:      driver.ExportImporter(fset, exports),
	}

	facts := analysis.NewFactStore()
	inFixtures := func(path string) bool { return fixtureSet[path] }
	var diags []analysis.Diagnostic

	for _, p := range pkgs {
		files := parsed[p]
		info := driver.NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p, fset, files, info)
		if err != nil {
			t.Fatalf("fixture %s: typecheck: %v", p, err)
		}
		imp.fixtures[p] = pkg
		if err := analysis.RunPackage(analyzers, fset, files, pkg, info, inFixtures, facts, &diags); err != nil {
			t.Fatalf("fixture %s: %v", p, err)
		}
	}
	analysis.SortDiagnostics(diags)

	wants := parseWants(t, fset, parsed)
	for _, d := range diags {
		if !wants.match(d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	wants.reportUnmatched(t)
}

func parseFixture(fset *token.FileSet, dir, pkg string) ([]*ast.File, error) {
	pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkg))
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(pkgDir, e.Name()))
		}
	}
	sort.Strings(paths)
	return driver.ParseFiles(fset, paths)
}

type fixtureImporter struct {
	fixtures map[string]*types.Package
	std      types.Importer
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.fixtures[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}

// A want is one expected diagnostic: a pattern at a file:line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// wantPattern extracts `backquoted` or "double-quoted" patterns from
// the text after a want keyword.
var wantPattern = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants collects want expectations from every comment in the
// fixture files.
func parseWants(t *testing.T, fset *token.FileSet, parsed map[string][]*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, files := range parsed {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := text[len("want "):]
					matches := wantPattern.FindAllStringSubmatch(rest, -1)
					if len(matches) == 0 {
						t.Fatalf("%s: want comment with no pattern", pos)
					}
					for _, m := range matches {
						pat := m[1]
						if pat == "" && m[2] != "" {
							if unq, err := strconv.Unquote(`"` + m[2] + `"`); err == nil {
								pat = unq
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						ws.wants = append(ws.wants, &want{
							file:    pos.Filename,
							line:    pos.Line,
							pattern: re,
						})
					}
				}
			}
		}
	}
	return ws
}

// match consumes the first unmatched want on the diagnostic's line
// whose pattern matches its message.
func (ws *wantSet) match(d analysis.Diagnostic) bool {
	for _, w := range ws.wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	for _, w := range ws.wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}
