// Package driver loads type-checked packages for the duetvet analyzers
// without depending on golang.org/x/tools: it shells out to
// `go list -deps -export -json`, parses each module package from
// source, and satisfies imports from the compiler's export data via the
// standard library's gc importer.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"duet/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Vet runs the analyzers over the packages matched by patterns
// (resolved in dir) and returns the sorted findings. Packages are
// type-checked from source in dependency order — the order `go list
// -deps` emits them — so cross-package facts flow from callees to
// callers.
func Vet(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	module := make(map[string]bool)
	var targets []*listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard {
			continue
		}
		module[p.ImportPath] = true
		if !p.DepOnly {
			if p.Error != nil {
				return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	facts := analysis.NewFactStore()
	inModule := func(path string) bool { return module[path] }
	var diags []analysis.Diagnostic

	for _, p := range targets {
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: typecheck: %w", p.ImportPath, err)
		}
		if err := analysis.RunPackage(analyzers, fset, files, pkg, info, inModule, facts, &diags); err != nil {
			return nil, err
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// goList runs `go list -export -json <args>` in dir and decodes the
// package stream.
func goList(dir string, args []string) ([]*listPackage, error) {
	cmdArgs := append([]string{"list", "-export", "-json"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// StdExports returns an export-data map for the named (typically
// standard-library) packages and their dependencies, for callers that
// type-check source outside a module — the analysistest fixture tree.
func StdExports(pkgs ...string) (map[string]string, error) {
	listed, err := goList("", append([]string{"-deps"}, pkgs...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export data files.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info populated with every map the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// ParseFiles parses the named files (with comments, which carry the
// //duet: directives) and returns their ASTs.
func ParseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return ParseFiles(fset, paths)
}

// Patterns normalizes CLI args into go list patterns, defaulting to
// the whole tree.
func Patterns(args []string) []string {
	if len(args) == 0 {
		return []string{"./..."}
	}
	out := make([]string, 0, len(args))
	for _, a := range args {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
