// Package netsim is the flow-level network simulator under Duet's VIP
// assignment algorithm and the failure studies (paper §4, §8.5). Traffic is
// treated as fluid: ECMP splits a flow equally across all shortest paths, so
// a unit of demand between two fabric nodes becomes a sparse vector of
// per-direction link loads. The assignment algorithm composes those vectors
// into cumulative utilization and minimizes the maximum (MRU).
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"duet/internal/topology"
)

// ErrUnreachable is returned when no path exists between two nodes (for
// example when failures have partitioned them).
var ErrUnreachable = errors.New("netsim: destination unreachable")

// LinkFrac is one entry of a sparse unit-flow vector: the fraction of the
// flow's rate crossing a directed link.
type LinkFrac struct {
	Dir  DirLink
	Frac float64
}

// DirLink identifies a direction of a physical link: 2*LinkID for A→B,
// 2*LinkID+1 for B→A.
type DirLink int32

// Forward returns the A→B direction of a link.
func Forward(l topology.LinkID) DirLink { return DirLink(2 * l) }

// Reverse returns the B→A direction of a link.
func Reverse(l topology.LinkID) DirLink { return DirLink(2*l + 1) }

// LinkOf returns the physical link of a directed link.
func (d DirLink) LinkOf() topology.LinkID { return topology.LinkID(d / 2) }

// Network wraps a topology with failure state and cached routing.
type Network struct {
	Topo *topology.Topology

	downSwitch []bool
	downLink   []bool
	epoch      uint64 // bumped on every failure-state change

	distCache map[topology.SwitchID][]int32
	flowCache map[flowKey][]LinkFrac
	inetCache map[topology.SwitchID][]LinkFrac
}

type flowKey struct {
	src, dst topology.SwitchID
}

// New creates a Network over topo with no failures.
func New(topo *topology.Topology) *Network {
	return &Network{
		Topo:       topo,
		downSwitch: make([]bool, topo.NumSwitches()),
		downLink:   make([]bool, topo.NumLinks()),
		distCache:  make(map[topology.SwitchID][]int32),
		flowCache:  make(map[flowKey][]LinkFrac),
		inetCache:  make(map[topology.SwitchID][]LinkFrac),
	}
}

// NumDirLinks returns the number of directed links (2 per physical link).
func (n *Network) NumDirLinks() int { return 2 * n.Topo.NumLinks() }

// Capacity returns the capacity of the physical link under a directed link.
func (n *Network) Capacity(d DirLink) float64 {
	return n.Topo.Link(d.LinkOf()).Capacity
}

// Epoch returns the failure-state version; it changes whenever failures are
// added or cleared, invalidating previously computed flow vectors.
func (n *Network) Epoch() uint64 { return n.epoch }

func (n *Network) invalidate() {
	n.epoch++
	n.distCache = make(map[topology.SwitchID][]int32)
	n.flowCache = make(map[flowKey][]LinkFrac)
	n.inetCache = make(map[topology.SwitchID][]LinkFrac)
}

// FailSwitch marks a switch down. All its links stop carrying traffic.
func (n *Network) FailSwitch(s topology.SwitchID) {
	if !n.downSwitch[s] {
		n.downSwitch[s] = true
		n.invalidate()
	}
}

// RecoverSwitch marks a switch up again.
func (n *Network) RecoverSwitch(s topology.SwitchID) {
	if n.downSwitch[s] {
		n.downSwitch[s] = false
		n.invalidate()
	}
}

// FailLink marks a link down.
func (n *Network) FailLink(l topology.LinkID) {
	if !n.downLink[l] {
		n.downLink[l] = true
		n.invalidate()
	}
}

// RecoverLink marks a link up again.
func (n *Network) RecoverLink(l topology.LinkID) {
	if n.downLink[l] {
		n.downLink[l] = false
		n.invalidate()
	}
}

// FailContainer fails every switch in container c (paper §8.5's container
// failure scenario).
func (n *Network) FailContainer(c int) {
	for _, s := range n.Topo.ContainerSwitches(c) {
		n.downSwitch[s] = true
	}
	n.invalidate()
}

// ClearFailures restores every switch and link.
func (n *Network) ClearFailures() {
	for i := range n.downSwitch {
		n.downSwitch[i] = false
	}
	for i := range n.downLink {
		n.downLink[i] = false
	}
	n.invalidate()
}

// SwitchUp reports whether a switch is alive.
func (n *Network) SwitchUp(s topology.SwitchID) bool { return !n.downSwitch[s] }

// linkUsable reports whether a link can carry traffic between two live
// switches.
func (n *Network) linkUsable(id topology.LinkID) bool {
	if n.downLink[id] {
		return false
	}
	l := n.Topo.Link(id)
	return !n.downSwitch[l.A] && !n.downSwitch[l.B]
}

// dist returns (cached) hop distances from every switch to dst, or nil
// entries (-1) for unreachable switches.
func (n *Network) dist(dst topology.SwitchID) []int32 {
	if d, ok := n.distCache[dst]; ok {
		return d
	}
	d := make([]int32, n.Topo.NumSwitches())
	for i := range d {
		d[i] = -1
	}
	if n.downSwitch[dst] {
		n.distCache[dst] = d
		return d
	}
	queue := make([]topology.SwitchID, 0, 64)
	d[dst] = 0
	queue = append(queue, dst)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range n.Topo.Neighbors[u] {
			if !n.linkUsable(nb.Link) || d[nb.Peer] >= 0 {
				continue
			}
			d[nb.Peer] = d[u] + 1
			queue = append(queue, nb.Peer)
		}
	}
	n.distCache[dst] = d
	return d
}

// UnitFlow returns the sparse per-directed-link load vector for one unit of
// traffic from src to dst, ECMP-split equally across all shortest paths.
// The returned slice is cached and must not be mutated.
func (n *Network) UnitFlow(src, dst topology.SwitchID) ([]LinkFrac, error) {
	if src == dst {
		return nil, nil
	}
	key := flowKey{src, dst}
	if v, ok := n.flowCache[key]; ok {
		return v, nil
	}
	if n.downSwitch[src] || n.downSwitch[dst] {
		return nil, ErrUnreachable
	}
	d := n.dist(dst)
	if d[src] < 0 {
		return nil, ErrUnreachable
	}

	// Propagate fractional flow down the shortest-path DAG. Nodes are
	// processed in order of decreasing distance so every node's inbound
	// fraction is complete before it splits outward.
	frac := map[topology.SwitchID]float64{src: 1}
	order := []topology.SwitchID{src}
	loads := map[DirLink]float64{}
	for i := 0; i < len(order); i++ {
		u := order[i]
		f := frac[u]
		// Count downhill neighbors.
		var next []topology.Neighbor
		for _, nb := range n.Topo.Neighbors[u] {
			if n.linkUsable(nb.Link) && d[nb.Peer] == d[u]-1 {
				next = append(next, nb)
			}
		}
		if len(next) == 0 {
			// Only possible at dst (d==0) on a consistent BFS tree.
			continue
		}
		share := f / float64(len(next))
		for _, nb := range next {
			dir := n.direction(nb.Link, u)
			loads[dir] += share
			if _, seen := frac[nb.Peer]; !seen && nb.Peer != dst {
				order = append(order, nb.Peer)
			}
			if nb.Peer != dst {
				frac[nb.Peer] += share
			}
		}
	}

	out := make([]LinkFrac, 0, len(loads))
	for dir, f := range loads {
		out = append(out, LinkFrac{Dir: dir, Frac: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	n.flowCache[key] = out
	return out, nil
}

// direction returns the DirLink for traversing link id out of switch from.
func (n *Network) direction(id topology.LinkID, from topology.SwitchID) DirLink {
	if n.Topo.Link(id).A == from {
		return Forward(id)
	}
	return Reverse(id)
}

// Loads is a dense per-directed-link traffic map in bits/second.
type Loads []float64

// NewLoads allocates a zeroed load map for the network.
func (n *Network) NewLoads() Loads { return make(Loads, n.NumDirLinks()) }

// AddFlow adds rate bps of src→dst traffic to the load map.
func (n *Network) AddFlow(l Loads, src, dst topology.SwitchID, rate float64) error {
	vec, err := n.UnitFlow(src, dst)
	if err != nil {
		return err
	}
	for _, lf := range vec {
		l[lf.Dir] += rate * lf.Frac
	}
	return nil
}

// MaxUtilization returns the highest per-direction link utilization in the
// load map and the directed link where it occurs. An empty network returns 0.
func (n *Network) MaxUtilization(l Loads) (float64, DirLink) {
	best, bestDir := 0.0, DirLink(-1)
	for dir := range l {
		if l[dir] == 0 {
			continue
		}
		u := l[dir] / n.Capacity(DirLink(dir))
		if u > best {
			best, bestDir = u, DirLink(dir)
		}
	}
	return best, bestDir
}

// Utilization returns the utilization of one directed link.
func (n *Network) Utilization(l Loads, d DirLink) float64 {
	return l[d] / n.Capacity(d)
}

// String renders a directed link for diagnostics.
func (n *Network) DirString(d DirLink) string {
	link := n.Topo.Link(d.LinkOf())
	a, b := n.Topo.Switch(link.A).Name, n.Topo.Switch(link.B).Name
	if d%2 == 0 {
		return fmt.Sprintf("%s→%s", a, b)
	}
	return fmt.Sprintf("%s→%s", b, a)
}

// InternetFlow returns the sparse load vector of one unit of Internet
// ingress traffic destined to dst: the unit is spread equally over all live
// core switches (where WAN traffic enters the fabric) and ECMP-routed to
// dst. The result is cached per destination; callers must not mutate it.
func (n *Network) InternetFlow(dst topology.SwitchID) ([]LinkFrac, error) {
	if v, ok := n.inetCache[dst]; ok {
		return v, nil
	}
	var cores []topology.SwitchID
	for i := 0; i < n.Topo.Cfg.Cores; i++ {
		if c := n.Topo.CoreID(i); n.SwitchUp(c) && c != dst {
			cores = append(cores, c)
		}
	}
	if len(cores) == 0 {
		// dst is the only live core (or none are): ingress terminates there.
		n.inetCache[dst] = nil
		return nil, nil
	}
	acc := map[DirLink]float64{}
	share := 1.0 / float64(n.Topo.Cfg.Cores)
	for _, c := range cores {
		vec, err := n.UnitFlow(c, dst)
		if err != nil {
			return nil, err
		}
		for _, lf := range vec {
			acc[lf.Dir] += share * lf.Frac
		}
	}
	out := make([]LinkFrac, 0, len(acc))
	for dir, f := range acc {
		out = append(out, LinkFrac{Dir: dir, Frac: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	n.inetCache[dst] = out
	return out, nil
}
