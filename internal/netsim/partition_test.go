package netsim

// Partition and heal edge cases: what the simulator must get right when
// failures split the fabric and when repairs arrive in awkward orders. The
// TIP scenario models §5.2's two-hop indirection at the flow level — client
// traffic lands on the TIP's home switch (hop 1), which re-encapsulates
// toward the DIP's rack (hop 2) — with the blackhole arriving between the
// hops, as it does in practice when a switch dies with traffic in flight.

import (
	"math"
	"testing"

	"duet/internal/topology"
)

// vecEqual compares two flow vectors exactly (same links, same fractions).
func vecEqual(a, b []LinkFrac) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dir != b[i].Dir || math.Abs(a[i].Frac-b[i].Frac) > 1e-12 {
			return false
		}
	}
	return true
}

// TestPartitionIsolatesContainer fails every Agg in container 0: its ToRs
// can reach nothing (not even each other — ToRs only connect through Aggs),
// while the rest of the fabric keeps routing normally.
func TestPartitionIsolatesContainer(t *testing.T) {
	n := defaultNet(t)
	cfg := n.Topo.Cfg
	for j := 0; j < cfg.AggsPerContainer; j++ {
		n.FailSwitch(n.Topo.AggID(0, j))
	}

	src := n.Topo.TorID(0, 0)
	if _, err := n.UnitFlow(src, n.Topo.TorID(1, 0)); err != ErrUnreachable {
		t.Fatalf("cross-container flow out of partition: err = %v, want ErrUnreachable", err)
	}
	if _, err := n.UnitFlow(src, n.Topo.TorID(0, 1)); err != ErrUnreachable {
		t.Fatalf("intra-container flow across dead Aggs: err = %v, want ErrUnreachable", err)
	}
	if _, err := n.UnitFlow(src, n.Topo.CoreID(0)); err != ErrUnreachable {
		t.Fatalf("flow to core from partition: err = %v, want ErrUnreachable", err)
	}
	// The rest of the fabric is unaffected.
	vec, err := n.UnitFlow(n.Topo.TorID(1, 0), n.Topo.TorID(2, 0))
	if err != nil {
		t.Fatalf("flow outside the partition failed: %v", err)
	}
	if got := intoDst(n, vec, n.Topo.TorID(2, 0)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("conservation outside partition: %v", got)
	}
}

// TestBlackholeDuringTIPHop stages the two TIP hops and kills the TIP's
// home switch between them: hop 1 was routable when the packet left the
// client, hop 2 must fail (the re-encapsulating switch is gone), and after
// recovery the full two-hop path works again.
func TestBlackholeDuringTIPHop(t *testing.T) {
	n := defaultNet(t)
	client := n.Topo.TorID(0, 0)
	tipHome := n.Topo.AggID(1, 0) // TIP partition lives on an Agg (§5.2)
	dipRack := n.Topo.TorID(2, 3)

	hop1, err := n.UnitFlow(client, tipHome)
	if err != nil {
		t.Fatalf("hop 1 before failure: %v", err)
	}
	if got := intoDst(n, hop1, tipHome); math.Abs(got-1) > 1e-9 {
		t.Fatalf("hop 1 conservation: %v", got)
	}
	epochBefore := n.Epoch()

	// The switch dies with the packet "between" hops.
	n.FailSwitch(tipHome)
	if n.Epoch() == epochBefore {
		t.Fatal("failure did not bump the epoch — stale hop-1 vectors would survive")
	}
	if _, err := n.UnitFlow(tipHome, dipRack); err != ErrUnreachable {
		t.Fatalf("hop 2 from dead TIP home: err = %v, want ErrUnreachable", err)
	}
	// Recomputing hop 1 now also fails: the fabric no longer routes toward
	// the dead switch, which is exactly the Fig-12 blackhole window.
	if _, err := n.UnitFlow(client, tipHome); err != ErrUnreachable {
		t.Fatalf("hop 1 to dead TIP home: err = %v, want ErrUnreachable", err)
	}

	// Heal: both hops route again and conserve flow.
	n.RecoverSwitch(tipHome)
	hop1b, err := n.UnitFlow(client, tipHome)
	if err != nil {
		t.Fatalf("hop 1 after heal: %v", err)
	}
	if !vecEqual(hop1, hop1b) {
		t.Fatal("hop 1 after heal differs from before the failure")
	}
	hop2, err := n.UnitFlow(tipHome, dipRack)
	if err != nil {
		t.Fatalf("hop 2 after heal: %v", err)
	}
	if got := intoDst(n, hop2, dipRack); math.Abs(got-1) > 1e-9 {
		t.Fatalf("hop 2 conservation after heal: %v", got)
	}
}

// TestHealOrdering breaks a switch and a link whose failures overlap, then
// heals them in both orders: every intermediate state must route correctly
// for what is up, and the fully healed fabric must reproduce the
// pre-failure vector exactly.
func TestHealOrdering(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	dst := n.Topo.TorID(1, 0)
	baseline, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	agg := n.Topo.AggID(0, 0)
	// A link from a *different* Agg in the same container, so the two
	// failures remove independent capacity on the src side.
	var link topology.LinkID = -1
	for _, nb := range n.Topo.Neighbors[src] {
		if nb.Peer != agg {
			link = nb.Link
			break
		}
	}
	if link < 0 {
		t.Fatal("no second uplink found")
	}

	for _, order := range []string{"switch-first", "link-first"} {
		n.FailSwitch(agg)
		n.FailLink(link)

		// Both down: the flow still conserves over the remaining uplinks.
		vec, err := n.UnitFlow(src, dst)
		if err != nil {
			t.Fatalf("[%s] flow with both failures: %v", order, err)
		}
		if got := intoDst(n, vec, dst); math.Abs(got-1) > 1e-9 {
			t.Fatalf("[%s] conservation with both failures: %v", order, got)
		}
		for _, lf := range vec {
			if lf.Dir.LinkOf() == link {
				t.Fatalf("[%s] flow crossed the failed link", order)
			}
			l := n.Topo.Link(lf.Dir.LinkOf())
			if l.A == agg || l.B == agg {
				t.Fatalf("[%s] flow touched the failed switch", order)
			}
		}

		// Heal in this order; the partial state must still avoid whatever
		// remains down.
		if order == "switch-first" {
			n.RecoverSwitch(agg)
			mid, err := n.UnitFlow(src, dst)
			if err != nil {
				t.Fatalf("[%s] flow after partial heal: %v", order, err)
			}
			for _, lf := range mid {
				if lf.Dir.LinkOf() == link {
					t.Fatalf("[%s] partial heal used the still-failed link", order)
				}
			}
			n.RecoverLink(link)
		} else {
			n.RecoverLink(link)
			mid, err := n.UnitFlow(src, dst)
			if err != nil {
				t.Fatalf("[%s] flow after partial heal: %v", order, err)
			}
			for _, lf := range mid {
				l := n.Topo.Link(lf.Dir.LinkOf())
				if l.A == agg || l.B == agg {
					t.Fatalf("[%s] partial heal used the still-failed switch", order)
				}
			}
			n.RecoverSwitch(agg)
		}

		healed, err := n.UnitFlow(src, dst)
		if err != nil {
			t.Fatalf("[%s] flow after full heal: %v", order, err)
		}
		if !vecEqual(baseline, healed) {
			t.Fatalf("[%s] fully healed vector differs from baseline", order)
		}
	}
}

// TestRecoverLinkIdempotent checks RecoverLink's epoch discipline: healing
// an already-up link must not invalidate caches (epoch unchanged), exactly
// like FailSwitch/RecoverSwitch.
func TestRecoverLinkIdempotent(t *testing.T) {
	n := defaultNet(t)
	e0 := n.Epoch()
	n.RecoverLink(0)
	if n.Epoch() != e0 {
		t.Fatal("recovering an up link bumped the epoch")
	}
	n.FailLink(0)
	e1 := n.Epoch()
	if e1 == e0 {
		t.Fatal("FailLink did not bump the epoch")
	}
	n.RecoverLink(0)
	if n.Epoch() == e1 {
		t.Fatal("RecoverLink did not bump the epoch")
	}
	n.RecoverLink(0)
	if n.Epoch() != e1+1 {
		t.Fatal("double RecoverLink bumped the epoch twice")
	}
}

// TestInternetFlowDuringPartialCoreFailure checks ingress behavior while
// some cores are down and after heal: the live-core share must still sum to
// (live cores / all cores), the §8.5 blast-radius property, and healing
// restores full ingress.
func TestInternetFlowDuringPartialCoreFailure(t *testing.T) {
	n := defaultNet(t)
	dst := n.Topo.TorID(0, 0)
	cores := n.Topo.Cfg.Cores

	n.FailSwitch(n.Topo.CoreID(0))
	vec, err := n.InternetFlow(dst)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cores-1) / float64(cores)
	if got := intoDst(n, vec, dst); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ingress with one core down = %v, want %v", got, want)
	}

	n.RecoverSwitch(n.Topo.CoreID(0))
	vec, err = n.InternetFlow(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := intoDst(n, vec, dst); math.Abs(got-1) > 1e-9 {
		t.Fatalf("ingress after heal = %v, want 1", got)
	}
}
