package netsim

import (
	"math"
	"testing"

	"duet/internal/topology"
)

func defaultNet(t testing.TB) *Network {
	t.Helper()
	return New(topology.MustNew(topology.DefaultConfig()))
}

// intoDst sums the flow fractions arriving at dst.
func intoDst(n *Network, vec []LinkFrac, dst topology.SwitchID) float64 {
	var sum float64
	for _, lf := range vec {
		link := n.Topo.Link(lf.Dir.LinkOf())
		to := link.B
		if lf.Dir%2 == 1 {
			to = link.A
		}
		if to == dst {
			sum += lf.Frac
		}
	}
	return sum
}

func TestUnitFlowSelf(t *testing.T) {
	n := defaultNet(t)
	vec, err := n.UnitFlow(5, 5)
	if err != nil || len(vec) != 0 {
		t.Fatalf("self flow = %v, %v; want empty", vec, err)
	}
}

func TestUnitFlowSameContainer(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	dst := n.Topo.TorID(0, 1)
	vec, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Path ToR→Agg→ToR: one unit up split over 4 Aggs, one unit down.
	if got := intoDst(n, vec, dst); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow into dst = %v, want 1", got)
	}
	// No core links should be touched.
	for _, lf := range vec {
		link := n.Topo.Link(lf.Dir.LinkOf())
		if n.Topo.Switch(link.A).Kind == topology.Core || n.Topo.Switch(link.B).Kind == topology.Core {
			t.Fatalf("intra-container flow crossed core link %s", n.DirString(lf.Dir))
		}
	}
	// Up split equal across the 4 Aggs.
	for _, lf := range vec {
		if math.Abs(lf.Frac-0.25) > 1e-9 {
			t.Fatalf("unexpected fraction %v on %s", lf.Frac, n.DirString(lf.Dir))
		}
	}
	if len(vec) != 8 {
		t.Fatalf("link count = %d, want 8 (4 up + 4 down)", len(vec))
	}
}

func TestUnitFlowCrossContainer(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	dst := n.Topo.TorID(3, 7)
	vec, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := intoDst(n, vec, dst); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow into dst = %v, want 1", got)
	}
	// Conservation at every intermediate node: inflow == outflow.
	in := make(map[topology.SwitchID]float64)
	out := make(map[topology.SwitchID]float64)
	for _, lf := range vec {
		link := n.Topo.Link(lf.Dir.LinkOf())
		from, to := link.A, link.B
		if lf.Dir%2 == 1 {
			from, to = to, from
		}
		out[from] += lf.Frac
		in[to] += lf.Frac
	}
	for s, o := range out {
		if s == src {
			continue
		}
		if math.Abs(in[s]-o) > 1e-9 {
			t.Fatalf("conservation violated at %s: in=%v out=%v", n.Topo.Switch(s).Name, in[s], o)
		}
	}
	if math.Abs(out[src]-1) > 1e-9 {
		t.Fatalf("src emits %v, want 1", out[src])
	}
}

func TestUnitFlowToAggAndCore(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(2, 3)

	// VIP assigned to an Agg in the same container: single hop.
	agg := n.Topo.AggID(2, 1)
	vec, err := n.UnitFlow(src, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || math.Abs(vec[0].Frac-1) > 1e-9 {
		t.Fatalf("ToR→local Agg should be a single full link, got %v", vec)
	}

	// VIP assigned to a core switch.
	core := n.Topo.CoreID(0)
	vec, err = n.UnitFlow(src, core)
	if err != nil {
		t.Fatal(err)
	}
	if got := intoDst(n, vec, core); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow into core = %v, want 1", got)
	}
}

func TestUnitFlowCachedAcrossCalls(t *testing.T) {
	n := defaultNet(t)
	a, err := n.UnitFlow(n.Topo.TorID(0, 0), n.Topo.TorID(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.UnitFlow(n.Topo.TorID(0, 0), n.Topo.TorID(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("expected cached slice to be returned")
	}
}

func TestFailSwitchReroutes(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	dst := n.Topo.TorID(0, 1)

	// Fail 3 of the 4 Aggs in container 0: all traffic should squeeze
	// through the surviving Agg.
	for j := 1; j < 4; j++ {
		n.FailSwitch(n.Topo.AggID(0, j))
	}
	vec, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 {
		t.Fatalf("links used = %d, want 2", len(vec))
	}
	for _, lf := range vec {
		if math.Abs(lf.Frac-1) > 1e-9 {
			t.Fatalf("surviving path should carry full unit, got %v", lf.Frac)
		}
	}
}

func TestFailSwitchUnreachable(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	dst := n.Topo.TorID(1, 0)

	// Isolate the source rack by failing all its Aggs.
	for j := 0; j < 4; j++ {
		n.FailSwitch(n.Topo.AggID(0, j))
	}
	if _, err := n.UnitFlow(src, dst); err != ErrUnreachable {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}

	// Destination down.
	n.ClearFailures()
	n.FailSwitch(dst)
	if _, err := n.UnitFlow(src, dst); err != ErrUnreachable {
		t.Fatalf("dst down: got %v, want ErrUnreachable", err)
	}
}

func TestFailLink(t *testing.T) {
	n := defaultNet(t)
	src := n.Topo.TorID(0, 0)
	agg := n.Topo.AggID(0, 0)
	// Find and fail the direct ToR-Agg link; traffic must detour (no other
	// shortest path of length 1 exists, path length becomes 3).
	var link topology.LinkID = -1
	for _, nb := range n.Topo.Neighbors[src] {
		if nb.Peer == agg {
			link = nb.Link
		}
	}
	if link < 0 {
		t.Fatal("link not found")
	}
	n.FailLink(link)
	vec, err := n.UnitFlow(src, agg)
	if err != nil {
		t.Fatal(err)
	}
	if got := intoDst(n, vec, agg); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow into agg = %v, want 1", got)
	}
	for _, lf := range vec {
		if lf.Dir.LinkOf() == link {
			t.Fatal("failed link still carries traffic")
		}
	}
}

func TestFailContainer(t *testing.T) {
	n := defaultNet(t)
	n.FailContainer(0)
	for _, s := range n.Topo.ContainerSwitches(0) {
		if n.SwitchUp(s) {
			t.Fatalf("switch %v still up after container failure", s)
		}
	}
	// Cross-container traffic avoiding container 0 still works.
	if _, err := n.UnitFlow(n.Topo.TorID(1, 0), n.Topo.TorID(2, 0)); err != nil {
		t.Fatal(err)
	}
	n.ClearFailures()
	if _, err := n.UnitFlow(n.Topo.TorID(0, 0), n.Topo.TorID(1, 0)); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestEpochBumpsOnFailureChange(t *testing.T) {
	n := defaultNet(t)
	e0 := n.Epoch()
	n.FailSwitch(3)
	if n.Epoch() == e0 {
		t.Fatal("epoch did not change on failure")
	}
	e1 := n.Epoch()
	n.FailSwitch(3) // no-op
	if n.Epoch() != e1 {
		t.Fatal("epoch changed on redundant failure")
	}
	n.RecoverSwitch(3)
	if n.Epoch() == e1 {
		t.Fatal("epoch did not change on recovery")
	}
}

func TestLoadsAndMaxUtilization(t *testing.T) {
	n := defaultNet(t)
	loads := n.NewLoads()
	src := n.Topo.TorID(0, 0)
	agg := n.Topo.AggID(0, 0)

	// 5 Gbps over a single 10 Gbps ToR→Agg link → 50% utilization.
	if err := n.AddFlow(loads, src, agg, 5e9); err != nil {
		t.Fatal(err)
	}
	u, dir := n.MaxUtilization(loads)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("max util = %v, want 0.5", u)
	}
	if dir.LinkOf() < 0 || n.Utilization(loads, dir) != u {
		t.Fatal("max link inconsistent")
	}

	// Adding the reverse flow should not change max (separate direction).
	if err := n.AddFlow(loads, agg, src, 4e9); err != nil {
		t.Fatal(err)
	}
	u2, _ := n.MaxUtilization(loads)
	if math.Abs(u2-0.5) > 1e-9 {
		t.Fatalf("max util after reverse flow = %v, want 0.5", u2)
	}
}

func TestMaxUtilizationEmpty(t *testing.T) {
	n := defaultNet(t)
	u, dir := n.MaxUtilization(n.NewLoads())
	if u != 0 || dir != -1 {
		t.Fatalf("empty loads: %v, %v", u, dir)
	}
}

func TestAddFlowUnreachable(t *testing.T) {
	n := defaultNet(t)
	n.FailSwitch(n.Topo.TorID(1, 1))
	if err := n.AddFlow(n.NewLoads(), n.Topo.TorID(0, 0), n.Topo.TorID(1, 1), 1e9); err == nil {
		t.Fatal("expected error adding flow to failed switch")
	}
}

func TestDirLinkHelpers(t *testing.T) {
	if Forward(3).LinkOf() != 3 || Reverse(3).LinkOf() != 3 {
		t.Fatal("LinkOf wrong")
	}
	if Forward(3) == Reverse(3) {
		t.Fatal("directions must differ")
	}
	n := defaultNet(t)
	if n.DirString(Forward(0)) == n.DirString(Reverse(0)) {
		t.Fatal("DirString should distinguish directions")
	}
}

// Flow conservation across many random pairs.
func TestUnitFlowConservationSweep(t *testing.T) {
	n := defaultNet(t)
	total := topology.SwitchID(n.Topo.NumSwitches())
	for src := topology.SwitchID(0); src < total; src += 13 {
		for dst := topology.SwitchID(1); dst < total; dst += 17 {
			if src == dst {
				continue
			}
			vec, err := n.UnitFlow(src, dst)
			if err != nil {
				t.Fatalf("%v→%v: %v", src, dst, err)
			}
			if got := intoDst(n, vec, dst); math.Abs(got-1) > 1e-9 {
				t.Fatalf("%v→%v: into dst = %v", src, dst, got)
			}
		}
	}
}

func BenchmarkUnitFlowCold(b *testing.B) {
	n := defaultNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.flowCache = make(map[flowKey][]LinkFrac)
		if _, err := n.UnitFlow(n.Topo.TorID(0, 0), n.Topo.TorID(5, 3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnitFlowCached(b *testing.B) {
	n := defaultNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.UnitFlow(n.Topo.TorID(0, 0), n.Topo.TorID(5, 3)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInternetFlowConservation(t *testing.T) {
	n := defaultNet(t)
	for _, dst := range []topology.SwitchID{
		n.Topo.TorID(3, 5), n.Topo.AggID(2, 1), n.Topo.CoreID(4),
	} {
		vec, err := n.InternetFlow(dst)
		if err != nil {
			t.Fatal(err)
		}
		// One unit spread over all cores arrives in full at dst (minus the
		// share originating AT dst if dst is a core).
		got := intoDst(n, vec, dst)
		want := 1.0
		if n.Topo.Switch(dst).Kind == topology.Core {
			want = 1.0 - 1.0/float64(n.Topo.Cfg.Cores)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("dst %s: internet inflow %v, want %v", n.Topo.Switch(dst).Name, got, want)
		}
	}
}

func TestInternetFlowCached(t *testing.T) {
	n := defaultNet(t)
	a, err := n.InternetFlow(n.Topo.TorID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.InternetFlow(n.Topo.TorID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("InternetFlow not cached")
	}
	// Failure invalidates the cache.
	n.FailSwitch(n.Topo.CoreID(0))
	c, err := n.InternetFlow(n.Topo.TorID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == 0 {
		t.Fatal("no flow after single core failure")
	}
	for _, lf := range c {
		link := n.Topo.Link(lf.Dir.LinkOf())
		if link.A == n.Topo.CoreID(0) || link.B == n.Topo.CoreID(0) {
			t.Fatal("failed core still carries internet ingress")
		}
	}
}

func TestInternetFlowAllCoresDown(t *testing.T) {
	n := defaultNet(t)
	for i := 0; i < n.Topo.Cfg.Cores; i++ {
		n.FailSwitch(n.Topo.CoreID(i))
	}
	// All ingress points dead: no flow, no error (the traffic is gone).
	vec, err := n.InternetFlow(n.Topo.TorID(0, 0))
	if err != nil || vec != nil {
		t.Fatalf("got %v, %v; want nil, nil", vec, err)
	}
}

// TestFailureInvalidatesAllCaches pins the invalidation contract the
// assignment engine depends on: every failure-state change (FailSwitch,
// FailLink, recovery) bumps the epoch and flushes all three memo tables —
// distCache (via rerouted UnitFlow paths), flowCache (stale spread vectors
// are never returned), and inetCache (ingress spread recomputed). A stale
// cache here would silently route assignment decisions over dead links.
func TestFailureInvalidatesAllCaches(t *testing.T) {
	n := defaultNet(t)
	src, dst := n.Topo.TorID(0, 0), n.Topo.TorID(0, 1)

	flowBefore, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	inetBefore, err := n.InternetFlow(dst)
	if err != nil {
		t.Fatal(err)
	}

	// FailLink must bump the epoch (TestEpochBumpsOnFailureChange covers
	// FailSwitch) and flush the flow cache: the rerouted vector must avoid
	// the dead link, which a cache hit could not.
	var link topology.LinkID = -1
	for _, nb := range n.Topo.Neighbors[src] {
		if nb.Peer == n.Topo.AggID(0, 0) {
			link = nb.Link
		}
	}
	if link < 0 {
		t.Fatal("ToR-Agg link not found")
	}
	e0 := n.Epoch()
	n.FailLink(link)
	if n.Epoch() == e0 {
		t.Fatal("FailLink did not bump epoch")
	}
	flowFailed, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(flowBefore) > 0 && len(flowFailed) > 0 && &flowBefore[0] == &flowFailed[0] {
		t.Fatal("UnitFlow returned the pre-failure cached vector")
	}
	for _, lf := range flowFailed {
		if lf.Dir.LinkOf() == link {
			t.Fatal("stale flowCache/distCache: failed link still on path")
		}
	}

	// A core failure must flush inetCache: the new spread avoids the core.
	core0 := n.Topo.CoreID(0)
	n.FailSwitch(core0)
	inetFailed, err := n.InternetFlow(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(inetBefore) > 0 && len(inetFailed) > 0 && &inetBefore[0] == &inetFailed[0] {
		t.Fatal("InternetFlow returned the pre-failure cached vector")
	}
	for _, lf := range inetFailed {
		l := n.Topo.Link(lf.Dir.LinkOf())
		if l.A == core0 || l.B == core0 {
			t.Fatal("stale inetCache: failed core still carries ingress")
		}
	}

	// Recovery bumps the epoch again and restores the original answers —
	// recomputed, not replayed from a stale generation.
	e1 := n.Epoch()
	n.ClearFailures()
	if n.Epoch() == e1 {
		t.Fatal("ClearFailures did not bump epoch")
	}
	flowAfter, err := n.UnitFlow(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(flowAfter) != len(flowBefore) {
		t.Fatalf("recovered UnitFlow has %d links, want %d", len(flowAfter), len(flowBefore))
	}
	want := map[DirLink]float64{}
	for _, lf := range flowBefore {
		want[lf.Dir] = lf.Frac
	}
	for _, lf := range flowAfter {
		if math.Abs(want[lf.Dir]-lf.Frac) > 1e-9 {
			t.Fatalf("recovered flow on %s = %v, want %v", n.DirString(lf.Dir), lf.Frac, want[lf.Dir])
		}
	}
	inetAfter, err := n.InternetFlow(dst)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantIn := intoDst(n, inetAfter, dst), 1.0; math.Abs(got-wantIn) > 1e-9 {
		t.Fatalf("recovered internet inflow %v, want %v", got, wantIn)
	}
}
