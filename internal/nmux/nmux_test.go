package nmux

import (
	"errors"
	"testing"

	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/smux"
	"duet/internal/telemetry"
)

func testVIP(last byte, ndips int) *service.VIP {
	v := &service.VIP{Addr: packet.AddrFrom4(10, 0, 0, last)}
	for i := 0; i < ndips; i++ {
		v.Backends = append(v.Backends, service.Backend{
			Addr: packet.AddrFrom4(100, last, byte(i), 1), Weight: 1,
		})
	}
	return v
}

func tcpPacket(t *testing.T, tuple packet.FiveTuple) []byte {
	t.Helper()
	return packet.BuildTCP(tuple, packet.TCPSyn, nil)
}

func flowTuple(vip packet.Addr, seq uint32) packet.FiveTuple {
	return packet.FiveTuple{
		Src:     packet.AddrFrom4(30, byte(seq>>16), byte(seq>>8), byte(seq)),
		Dst:     vip,
		SrcPort: uint16(1024 + seq%50000),
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
}

func TestProcessHitMissAndPinning(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}

	tuple := flowTuple(v.Addr, 7)
	pkt := tcpPacket(t, tuple)
	res, err := m.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pinned {
		t.Fatal("first packet of a flow must not be pinned")
	}
	first := res.Encap
	res2, err := m.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Pinned || res2.Encap != first {
		t.Fatalf("second packet: pinned=%v encap=%s, want pinned to %s", res2.Pinned, res2.Encap, first)
	}
	if got := m.Flows(); got != 1 {
		t.Fatalf("Flows() = %d, want 1", got)
	}

	// Unknown VIP is a miss, not a drop.
	other := tcpPacket(t, flowTuple(packet.AddrFrom4(10, 0, 0, 99), 1))
	if _, err := m.Process(other, nil); !errors.Is(err, ErrNotOurVIP) {
		t.Fatalf("unknown VIP: err = %v, want ErrNotOurVIP", err)
	}
}

func TestEncapMatchesSMux(t *testing.T) {
	// An NMux paired with an SMux (same self address) must produce
	// byte-identical encapsulated output for the same flow — the property
	// that makes tier fall-through invisible to backends.
	self := packet.AddrFrom4(192, 168, 0, 1)
	nm := New(Config{SelfAddr: self})
	sm := smux.New(smux.Config{SelfAddr: self})
	v := testVIP(1, 4)
	if err := nm.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := sm.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < 64; seq++ {
		pkt := tcpPacket(t, flowTuple(v.Addr, seq))
		nres, err := nm.Process(pkt, nil)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sm.Process(pkt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(nres.Packet) != string(sres.Packet) {
			t.Fatalf("seq %d: NMux and SMux encap differ", seq)
		}
	}
}

func TestWildcardAdmission(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1), TableSize: 12})
	// Each VIP costs 1 + 4 = 5 entries; two fit (10), a third does not.
	if err := m.AddVIP(testVIP(1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddVIP(testVIP(2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.AddVIP(testVIP(3, 4)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("third AddVIP: err = %v, want ErrTableFull", err)
	}
	st := m.Stats()
	if st.Wildcard != 10 || st.Cap != 12 || st.VIPs != 2 {
		t.Fatalf("Stats = %+v, want wildcard 10 cap 12 vips 2", st)
	}
	if m.Fits(testVIP(4, 4)) {
		t.Fatal("Fits should reject a 5-entry VIP with 2 entries free")
	}
	if !m.Fits(testVIP(4, 1)) {
		t.Fatal("Fits should accept a 2-entry VIP with 2 entries free")
	}

	// UpdateVIP re-checks the budget for the new cost.
	if err := m.UpdateVIP(testVIP(1, 7)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("growing update: err = %v, want ErrTableFull", err)
	}
	if err := m.UpdateVIP(testVIP(1, 2)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Wildcard != 8 {
		t.Fatalf("wildcard after shrink = %d, want 8", st.Wildcard)
	}

	// RemoveVIP releases the entries.
	if err := m.RemoveVIP(testVIP(2, 4).Addr); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Wildcard != 3 {
		t.Fatalf("wildcard after removal = %d, want 3", st.Wildcard)
	}
}

func TestFlowBudgetRejection(t *testing.T) {
	// Table of 8: VIP wildcard costs 1+2=3, leaving 5 flow slots. The 6th
	// distinct flow is served stateless, not dropped and not evicting.
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1), TableSize: 8})
	reg := telemetry.NewRegistry()
	m.SetTelemetry(reg, nil, 1)
	v := testVIP(1, 2)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < 10; seq++ {
		if _, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Flows(); got != 5 {
		t.Fatalf("Flows() = %d, want 5 (budget = 8 - 3)", got)
	}
	if st := m.Stats(); st.Used != 8 {
		t.Fatalf("Used = %d, want table exactly full at 8", st.Used)
	}
	if got := reg.Counter("nmux.flow.rejected_full").Value(); got != 5 {
		t.Fatalf("rejected_full = %d, want 5", got)
	}
	// Overflow flows still resolve deterministically via the shared hash.
	over := flowTuple(v.Addr, 9)
	d1, err := m.Lookup(over)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Process(tcpPacket(t, over), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pinned || res.Encap != d1 {
		t.Fatalf("overflow flow: pinned=%v encap=%s, want stateless %s", res.Pinned, res.Encap, d1)
	}
}

func TestReprogramKeepsPinnedFlows(t *testing.T) {
	// Connections straddling a table reprogram must not misroute: flows
	// pinned before UpdateVIP keep their DIP afterwards.
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	const flows = 32
	before := make(map[uint32]packet.Addr, flows)
	for seq := uint32(0); seq < flows; seq++ {
		res, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq)), nil)
		if err != nil {
			t.Fatal(err)
		}
		before[seq] = res.Encap
	}
	// Reprogram with the backend order reversed (hash→member mapping shifts).
	upd := &service.VIP{Addr: v.Addr}
	for i := len(v.Backends) - 1; i >= 0; i-- {
		upd.Backends = append(upd.Backends, v.Backends[i])
	}
	if err := m.UpdateVIP(upd); err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < flows; seq++ {
		res, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pinned || res.Encap != before[seq] {
			t.Fatalf("flow %d remapped across reprogram: pinned=%v %s → %s",
				seq, res.Pinned, before[seq], res.Encap)
		}
	}
}

func TestRemoveBackendDropsPinnedFlows(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	victim := v.Backends[0].Addr
	pinnedToVictim := 0
	for seq := uint32(0); seq < 64; seq++ {
		res, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Encap == victim {
			pinnedToVictim++
		}
	}
	if pinnedToVictim == 0 {
		t.Fatal("no flows landed on the victim DIP; widen the flow sweep")
	}
	total := m.Flows()
	if err := m.RemoveBackend(v.Addr, victim); err != nil {
		t.Fatal(err)
	}
	if got := m.Flows(); got != total-pinnedToVictim {
		t.Fatalf("Flows() = %d after RemoveBackend, want %d", got, total-pinnedToVictim)
	}
	// Surviving flows stay pinned; no packet maps to the dead DIP anymore.
	for seq := uint32(0); seq < 64; seq++ {
		res, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Encap == victim {
			t.Fatalf("flow %d still mapped to removed DIP", seq)
		}
	}
	// Wildcard accounting is unchanged (slot kept dead, like the HMux).
	if st := m.Stats(); st.Wildcard != Cost(v) {
		t.Fatalf("Wildcard = %d after RemoveBackend, want %d", st.Wildcard, Cost(v))
	}
}

func TestRemoveVIPDropsFlowsAndMisses(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	pkt := tcpPacket(t, flowTuple(v.Addr, 3))
	if _, err := m.Process(pkt, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveVIP(v.Addr); err != nil {
		t.Fatal(err)
	}
	if got := m.Flows(); got != 0 {
		t.Fatalf("Flows() = %d after RemoveVIP, want 0", got)
	}
	if _, err := m.Process(pkt, nil); !errors.Is(err, ErrNotOurVIP) {
		t.Fatalf("post-removal err = %v, want ErrNotOurVIP", err)
	}
}

func TestDropCounters(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(64)
	m.SetTelemetry(reg, rec, 7)
	v := testVIP(1, 1)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveBackend(v.Addr, v.Backends[0].Addr); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Process([]byte{0xde, 0xad}, nil); err == nil {
		t.Fatal("malformed packet should error")
	}
	if got := reg.Counter("nmux.drops.malformed").Value(); got != 1 {
		t.Fatalf("drops.malformed = %d, want 1", got)
	}
	if _, err := m.Process(tcpPacket(t, flowTuple(v.Addr, 1)), nil); err == nil {
		t.Fatal("empty group should error")
	}
	if got := reg.Counter("nmux.drops.no_backend").Value(); got != 1 {
		t.Fatalf("drops.no_backend = %d, want 1", got)
	}
	// A table miss increments misses but records no drop.
	if _, err := m.Process(tcpPacket(t, flowTuple(packet.AddrFrom4(10, 0, 0, 99), 1)), nil); !errors.Is(err, ErrNotOurVIP) {
		t.Fatal("want ErrNotOurVIP")
	}
	if got := reg.Counter("nmux.misses").Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

func TestPortRules(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1), TableSize: 16})
	alt := []service.Backend{{Addr: packet.AddrFrom4(100, 9, 9, 1), Weight: 1}}
	v := testVIP(1, 2)
	v.Ports = []service.PortRule{{Port: 443, Backends: alt}}
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	// Cost covers the port rule: 1+2 default + 1+1 port = 5.
	if st := m.Stats(); st.Wildcard != 5 {
		t.Fatalf("Wildcard = %d, want 5", st.Wildcard)
	}
	tuple := flowTuple(v.Addr, 1)
	tuple.DstPort = 443
	res, err := m.Process(tcpPacket(t, tuple), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Encap != alt[0].Addr {
		t.Fatalf("port 443 mapped to %s, want %s", res.Encap, alt[0].Addr)
	}
}

func TestProcessZeroAllocWithTelemetry(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1024)
	m.SetTelemetry(reg, rec, 1)
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	pkt := tcpPacket(t, flowTuple(v.Addr, 1))
	buf := make([]byte, 0, 2048)
	if _, err := m.Process(pkt, buf[:0]); err != nil { // warm: pin the flow
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := m.Process(pkt, buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Process allocates %.1f times per packet, want 0", allocs)
	}
}

func TestConcurrentProcessAndReprogram(t *testing.T) {
	m := New(Config{SelfAddr: packet.AddrFrom4(192, 168, 0, 1)})
	v := testVIP(1, 4)
	if err := m.AddVIP(v); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			upd := testVIP(1, 4)
			if i%2 == 1 {
				upd.Backends = upd.Backends[:3]
			}
			if err := m.UpdateVIP(upd); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for seq := uint32(0); seq < 2000; seq++ {
		if _, err := m.Process(tcpPacket(t, flowTuple(v.Addr, seq%64)), nil); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
