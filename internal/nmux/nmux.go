// Package nmux implements a NIC/DPU match-table mux: the third tier of the
// load-balancing hierarchy, sitting between the switch HMux and the software
// SMux on each SMux server's NIC. The model follows the NIC-offload
// literature (HNLB's stateful NIC load balancer, Gryphon's DPU co-offload):
// a bounded match table holding two entry kinds —
//
//   - per-VIP wildcard entries (one match rule plus one action entry per
//     backend, like the HMux's ECMP+tunneling pipeline), programmed by the
//     controller; and
//   - exact 5-tuple flow entries, inserted by the dataplane on a flow's
//     first packet so later packets hit a pinned DIP without re-hashing
//     (like the SMux connection table, but capacity-bounded).
//
// Both kinds draw from one shared table budget — NIC TCAM/SRAM does not
// distinguish them — so programming a fat VIP shrinks the room left for flow
// pinning. When the flow region is full, new flows are served stateless by
// the shared ECMP hash (never dropped, never evicted: real NICs age entries
// out, but arbitrary eviction would un-pin live connections, so the model
// declines the insert instead and counts it).
//
// Wildcard resolution goes through the shared steer table
// (internal/steer): when paired with an SMux on the same host, both tiers
// read the SAME steer.Table instance (the SMux owns mutation), so the
// encapsulated output for a given flow is byte-identical whichever tier
// serves it — which is what makes the fall-through (and table reprogramming
// under live traffic) invisible to backends. A standalone NMux owns a
// private table.
//
// A packet whose destination VIP has no wildcard entry is a MISS
// (ErrNotOurVIP): the caller falls through to the SMux tier.
//
// Concurrency: the programmed-VIP set is an immutable generation behind an
// atomic pointer (writers rebuild copy-on-write under a mutex); the flow
// table is sharded by flow hash with per-shard locks; the shared table
// budget is a pair of atomics so the hot path never takes the writer lock.
package nmux

import (
	"errors"
	"sync"
	"sync/atomic"

	"duet/internal/ecmp"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/steer"
	"duet/internal/telemetry"
)

// DefaultTableSize is the match-table capacity in entries. NIC match tables
// sit at O(1k–10k) entries — small like the HMux's tables, not the SMux's
// million-entry RAM table.
const DefaultTableSize = 4096

// flowShards is the flow-table shard count. Power of two; shards are picked
// by the top bits of the shared ECMP hash, uncorrelated with the low bits
// the 256-slot group tables consume.
const flowShards = 16

// Errors returned by the NMux.
var (
	// ErrNotOurVIP is a table miss: the caller should fall through to the
	// SMux tier, exactly like hmux.ErrNotOurVIP falls through on FIB miss.
	ErrNotOurVIP = errors.New("nmux: packet does not match any programmed entry")
	// ErrTableFull rejects wildcard programming that exceeds the table.
	ErrTableFull   = errors.New("nmux: match table full")
	ErrVIPExists   = errors.New("nmux: VIP already programmed")
	ErrVIPNotFound = errors.New("nmux: VIP not programmed")
)

// Config parameterizes one NMux instance.
type Config struct {
	// SelfAddr is the hosting server's address — the same address as the
	// SMux behind it, so both tiers produce identical outer sources.
	SelfAddr packet.Addr

	// TableSize bounds the match table (wildcard + flow entries combined);
	// 0 means DefaultTableSize.
	TableSize int

	// Steer, when non-nil, is the paired SMux's lookup table: this NMux
	// resolves through it and never mutates it (the SMux backstop carries
	// every NIC-programmed VIP, so the SMux's writes keep it fresh). Nil
	// creates a private table the NMux maintains itself.
	Steer *steer.Table
}

// vipInfo is the per-VIP programming bookkeeping (resolution state lives in
// the steer table).
type vipInfo struct {
	backends []service.Backend
}

// vipTable is one immutable generation of the programmed wildcard entries.
type vipTable struct {
	epoch uint64
	vips  map[packet.Addr]*vipInfo
}

// flowShard is one lock-striped slice of the exact-match flow region.
type flowShard struct {
	mu    sync.Mutex
	flows map[packet.FiveTuple]packet.Addr
	_     [24]byte // pad toward a cache line to curb false sharing
}

// Mux is one NIC match-table mux. Process and Lookup are safe for concurrent
// callers; programming serializes on an internal writer lock.
type Mux struct {
	cfg Config

	steer    *steer.Table
	ownSteer bool // standalone: this mux maintains the table itself

	tab atomic.Pointer[vipTable]
	mu  sync.Mutex // serializes writers

	// Writer-side wildcard accounting: entries consumed by programmed VIPs,
	// and the per-VIP cost needed to release them. Guarded by mu.
	wildcardUsed int
	vipCost      map[packet.Addr]int

	// flowBudget is the table space left for exact-match entries
	// (TableSize − wildcardUsed), republished by writers; flowCount is the
	// live exact-match population. Atomics so Process admits flows without
	// the writer lock.
	flowBudget atomic.Int64
	flowCount  atomic.Int64

	shards [flowShards]flowShard

	tel muxTelemetry
}

// muxTelemetry is the NMux's pre-resolved instrument block; all fields are
// nil-safe no-ops until SetTelemetry is called.
type muxTelemetry struct {
	packets, encapped telemetry.CounterShard
	hits, misses      telemetry.CounterShard
	flowHits          telemetry.CounterShard
	flowInserts       telemetry.CounterShard
	flowRejectedFull  telemetry.CounterShard

	dropMalformed, dropNoBackend telemetry.CounterShard
	dropEncapError               telemetry.CounterShard

	flows *telemetry.Gauge

	rec  *telemetry.Recorder
	node uint32
}

// SetTelemetry attaches the mux to a metric registry and flight recorder.
// node identifies this NMux in trace events. Counters are shared across the
// fleet on the same registry; each mux claims its own shard. Call during
// setup, not concurrently with Process.
func (m *Mux) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder, node uint32) {
	m.tel = muxTelemetry{
		packets:          reg.Counter("nmux.packets").Shard(),
		encapped:         reg.Counter("nmux.encapped").Shard(),
		hits:             reg.Counter("nmux.hits").Shard(),
		misses:           reg.Counter("nmux.misses").Shard(),
		flowHits:         reg.Counter("nmux.flow.hits").Shard(),
		flowInserts:      reg.Counter("nmux.flow.inserts").Shard(),
		flowRejectedFull: reg.Counter("nmux.flow.rejected_full").Shard(),
		dropMalformed:    reg.Counter("nmux.drops.malformed").Shard(),
		dropNoBackend:    reg.Counter("nmux.drops.no_backend").Shard(),
		dropEncapError:   reg.Counter("nmux.drops.encap_error").Shard(),
		flows:            reg.Gauge("nmux.flows"),
		rec:              rec,
		node:             node,
	}
}

// drop accounts a rejected packet and returns err unchanged. A table miss is
// not a drop — the packet falls through to the SMux — so DropUnknownVIP never
// appears here.
func (m *Mux) drop(reason telemetry.DropReason, dst packet.Addr, err error) error {
	switch reason {
	case telemetry.DropMalformed:
		m.tel.dropMalformed.Inc()
	case telemetry.DropNoBackend:
		m.tel.dropNoBackend.Inc()
	case telemetry.DropEncapError:
		m.tel.dropEncapError.Inc()
	}
	m.tel.rec.Record(telemetry.KindDrop, m.tel.node, uint32(dst), 0, uint64(reason))
	return err
}

// New creates an NMux.
func New(cfg Config) *Mux {
	if cfg.TableSize <= 0 {
		cfg.TableSize = DefaultTableSize
	}
	m := &Mux{cfg: cfg, vipCost: make(map[packet.Addr]int)}
	m.steer = cfg.Steer
	if m.steer == nil {
		m.steer = steer.NewTable(steer.Config{})
		m.ownSteer = true
	}
	for i := range m.shards {
		m.shards[i].flows = make(map[packet.FiveTuple]packet.Addr)
	}
	m.flowBudget.Store(int64(cfg.TableSize))
	m.tab.Store(&vipTable{vips: make(map[packet.Addr]*vipInfo)})
	return m
}

// Self returns the mux's address.
//
//duet:hotpath
func (m *Mux) Self() packet.Addr { return m.cfg.SelfAddr }

// TableSize returns the configured match-table capacity.
func (m *Mux) TableSize() int { return m.cfg.TableSize }

// Steer returns the lookup table this mux resolves through.
func (m *Mux) Steer() *steer.Table { return m.steer }

// Epoch returns the wildcard-table generation, bumped on every mutation.
func (m *Mux) Epoch() uint64 { return m.tab.Load().epoch }

// Flows returns the current exact-match flow population.
func (m *Mux) Flows() int { return int(m.flowCount.Load()) }

// NumVIPs returns the programmed VIP count.
func (m *Mux) NumVIPs() int { return len(m.tab.Load().vips) }

// HasVIP reports whether the VIP is programmed.
func (m *Mux) HasVIP(addr packet.Addr) bool {
	_, ok := m.tab.Load().vips[addr]
	return ok
}

// Cost returns the wildcard entries programming v consumes: one match rule
// plus one action entry per backend, per port range.
func Cost(v *service.VIP) int {
	c := 1 + len(v.Backends)
	for _, pr := range v.Ports {
		c += 1 + len(pr.Backends)
	}
	return c
}

// Fits reports whether v's wildcard entries fit the remaining table space.
func (m *Mux) Fits(v *service.VIP) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wildcardUsed+Cost(v) <= m.cfg.TableSize
}

// Stats is a point-in-time occupancy snapshot.
type Stats struct {
	Cap      int // configured table capacity
	Wildcard int // entries consumed by programmed VIPs
	Flows    int // exact-match flow entries
	Used     int // Wildcard + Flows
	VIPs     int // programmed VIP count
}

// Stats returns the current table occupancy.
func (m *Mux) Stats() Stats {
	m.mu.Lock()
	w := m.wildcardUsed
	m.mu.Unlock()
	f := int(m.flowCount.Load())
	return Stats{
		Cap:      m.cfg.TableSize,
		Wildcard: w,
		Flows:    f,
		Used:     w + f,
		VIPs:     m.NumVIPs(),
	}
}

// shardFor returns the flow shard for a flow hash (top bits, independent of
// the slot index derived from the low bits of the same hash).
func (m *Mux) shardFor(h uint64) *flowShard {
	return &m.shards[(h>>48)&(flowShards-1)]
}

// publish installs a new wildcard-table generation and republishes the flow
// budget. Must hold m.mu.
func (m *Mux) publish(vips map[packet.Addr]*vipInfo) {
	cur := m.tab.Load()
	m.tab.Store(&vipTable{epoch: cur.epoch + 1, vips: vips})
	m.flowBudget.Store(int64(m.cfg.TableSize - m.wildcardUsed))
}

// cloneVIPs copies the current wildcard map for mutation. Must hold m.mu.
func (m *Mux) cloneVIPs() map[packet.Addr]*vipInfo {
	cur := m.tab.Load().vips
	cp := make(map[packet.Addr]*vipInfo, len(cur)+1)
	for k, v := range cur {
		cp[k] = v
	}
	return cp
}

// AddVIP programs a VIP's wildcard entries. Unlike the SMux the table is
// bounded: programming fails with ErrTableFull rather than evicting.
func (m *Mux) AddVIP(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tab.Load().vips[v.Addr]; ok {
		return ErrVIPExists
	}
	cost := Cost(v)
	if m.wildcardUsed+cost > m.cfg.TableSize {
		return ErrTableFull
	}
	if m.ownSteer {
		if err := m.steer.Set(v); err != nil {
			return err
		}
	}
	vips := m.cloneVIPs()
	vips[v.Addr] = &vipInfo{backends: append([]service.Backend(nil), v.Backends...)}
	m.wildcardUsed += cost
	m.vipCost[v.Addr] = cost
	m.publish(vips)
	return nil
}

// UpdateVIP replaces a VIP's backend set, re-checking the table budget for
// the new cost. Existing flows keep their pinned DIPs — that is what makes a
// reprogram invisible to connections straddling it.
func (m *Mux) UpdateVIP(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tab.Load().vips[v.Addr]; !ok {
		return ErrVIPNotFound
	}
	cost := Cost(v)
	if m.wildcardUsed-m.vipCost[v.Addr]+cost > m.cfg.TableSize {
		return ErrTableFull
	}
	if m.ownSteer {
		if err := m.steer.Set(v); err != nil {
			return err
		}
	}
	vips := m.cloneVIPs()
	vips[v.Addr] = &vipInfo{backends: append([]service.Backend(nil), v.Backends...)}
	m.wildcardUsed += cost - m.vipCost[v.Addr]
	m.vipCost[v.Addr] = cost
	m.publish(vips)
	return nil
}

// RemoveVIP deprograms a VIP, releases its wildcard entries and drops its
// pinned flows. The steer entry stays when the table is shared — the SMux
// backstop still serves the VIP.
func (m *Mux) RemoveVIP(addr packet.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tab.Load().vips[addr]; !ok {
		return ErrVIPNotFound
	}
	if m.ownSteer {
		if err := m.steer.RemoveVIP(addr); err != nil && err != steer.ErrVIPNotFound {
			return err
		}
	}
	vips := m.cloneVIPs()
	delete(vips, addr)
	m.wildcardUsed -= m.vipCost[addr]
	delete(m.vipCost, addr)
	m.publish(vips)
	m.dropFlows(func(t packet.FiveTuple, _ packet.Addr) bool { return t.Dst == addr })
	return nil
}

// RemoveBackend removes a DIP resiliently (same semantics as the HMux: the
// action slot stays allocated but dead, so the wildcard cost is unchanged)
// and terminates flows pinned to it.
func (m *Mux) RemoveBackend(vip, dip packet.Addr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.tab.Load().vips[vip]
	if !ok {
		return ErrVIPNotFound
	}
	for i, b := range info.backends {
		if b.Addr != dip {
			continue
		}
		if m.ownSteer {
			if err := m.steer.RemoveBackend(vip, dip); err != nil {
				return err
			}
		}
		cp := &vipInfo{backends: append([]service.Backend(nil), info.backends...)}
		cp.backends[i] = service.Backend{}
		vips := m.cloneVIPs()
		vips[vip] = cp
		m.publish(vips)
		m.dropFlows(func(t packet.FiveTuple, d packet.Addr) bool {
			return t.Dst == vip && d == dip
		})
		return nil
	}
	return ErrVIPNotFound
}

// dropFlows removes pinned flows matching the predicate from every shard and
// keeps the count and gauge in sync.
func (m *Mux) dropFlows(match func(packet.FiveTuple, packet.Addr) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		before := len(s.flows)
		for t, d := range s.flows {
			if match(t, d) {
				delete(s.flows, t)
			}
		}
		freed := before - len(s.flows)
		s.mu.Unlock()
		if freed > 0 {
			m.flowCount.Add(int64(-freed))
			m.tel.flows.Add(int64(-freed))
		}
	}
}

// Result describes the outcome of Process.
type Result struct {
	Encap  packet.Addr
	Packet []byte
	// Pinned reports the DIP came from an exact-match flow entry rather
	// than a fresh hash.
	Pinned bool
}

// Process load-balances one packet through the NIC table: decode, match the
// wildcard region (miss → ErrNotOurVIP, fall through to the SMux), pick the
// DIP (exact-match flow entry first, then the shared steer table, pinning
// the flow if the table has room), encapsulate. The output is appended to
// out. Safe for concurrent callers; the hot path allocates nothing
// (flow-map growth aside) and never takes the writer lock.
//
//duet:hotpath
func (m *Mux) Process(data []byte, out []byte) (Result, error) {
	m.tel.packets.Inc()
	var ip packet.IPv4 // stack scratch; Process must stay concurrency-safe
	if err := ip.DecodeFromBytes(data); err != nil {
		return Result{}, m.drop(telemetry.DropMalformed, 0, err)
	}
	if _, ok := m.tab.Load().vips[ip.Dst]; !ok {
		m.tel.misses.Inc()
		return Result{}, ErrNotOurVIP
	}
	e, ok := m.steer.View().Find(ip.Dst)
	if !ok {
		// Programmed here but absent from the shared table (the backstop
		// SMux has not learned the VIP yet): fall through rather than drop.
		m.tel.misses.Inc()
		return Result{}, ErrNotOurVIP
	}
	tuple, err := packet.ExtractFiveTuple(data)
	if err != nil {
		return Result{}, m.drop(telemetry.DropMalformed, ip.Dst, err)
	}
	m.tel.hits.Inc()
	sampled := m.tel.rec.Sample()
	if sampled {
		m.tel.rec.Record(telemetry.KindVIPLookup, m.tel.node, uint32(tuple.Dst), 0, 0)
	}

	// One hash per packet, shared between the flow shard (top bits) and the
	// slot pick (low bits) — the same hash the HMux and SMux compute, which
	// is what keeps tier fall-through consistent for a given flow.
	h := ecmp.Hash(tuple)
	s := m.shardFor(h)
	var dip packet.Addr
	pinned := false
	s.mu.Lock()
	if d, ok := s.flows[tuple]; ok {
		dip, pinned = d, true
		s.mu.Unlock()
	} else {
		dip, err = e.DIP(tuple, h)
		if err != nil {
			s.mu.Unlock()
			return Result{}, m.drop(telemetry.DropNoBackend, tuple.Dst, err)
		}
		// Reserve an exact-match entry if the shared budget has room; when
		// the table is full the flow is served stateless instead (no
		// eviction — evicting would un-pin a live connection).
		if n := m.flowCount.Add(1); n <= m.flowBudget.Load() {
			s.flows[tuple] = dip
			s.mu.Unlock()
			m.tel.flowInserts.Inc()
			m.tel.flows.Add(1)
		} else {
			m.flowCount.Add(-1)
			s.mu.Unlock()
			m.tel.flowRejectedFull.Inc()
		}
	}
	if pinned {
		m.tel.flowHits.Inc()
	}
	if sampled {
		aux := uint64(0)
		if pinned {
			aux = 1
		}
		m.tel.rec.Record(telemetry.KindECMPPick, m.tel.node, uint32(tuple.Dst), uint32(dip), aux)
	}

	pkt, err := packet.Encapsulate(out, m.cfg.SelfAddr, dip, data, 64)
	if err != nil {
		return Result{}, m.drop(telemetry.DropEncapError, tuple.Dst, err)
	}
	m.tel.encapped.Inc()
	if sampled {
		m.tel.rec.Record(telemetry.KindEncap, m.tel.node, uint32(tuple.Dst), uint32(dip), 0)
	}
	return Result{Encap: dip, Packet: pkt, Pinned: pinned}, nil
}

// Lookup returns the DIP Process would pick for a tuple without mutating
// flow state.
func (m *Mux) Lookup(tuple packet.FiveTuple) (packet.Addr, error) {
	if _, ok := m.tab.Load().vips[tuple.Dst]; !ok {
		return 0, ErrNotOurVIP
	}
	e, ok := m.steer.View().Find(tuple.Dst)
	if !ok {
		return 0, ErrNotOurVIP
	}
	h := ecmp.Hash(tuple)
	s := m.shardFor(h)
	s.mu.Lock()
	d, ok := s.flows[tuple]
	s.mu.Unlock()
	if ok {
		return d, nil
	}
	return e.DIP(tuple, h)
}
