// Package steer is the shared stateless 5-tuple→DIP lookup layer extracted
// from the per-tier muxes: an epoch-versioned, Maglev/Concury-style
// consistent lookup table published behind an atomic pointer, keyed by the
// same ECMP flow hash every tier computes (paper §3.3.1 — shared hashing is
// what keeps tier fall-through invisible to connections).
//
// Each VIP's resolution is a flat slot array (hash % slots → DIP address)
// materialized from the same resilient-hashing ecmp.Group the HMux programs,
// so for a given VIP, backend list and mutation history, the steer table,
// the SMux, the NMux and the HMux all pick the SAME DIP for the same
// 5-tuple. Lookups are one atomic load, one map probe and one slice index —
// zero allocations, no locks.
//
// Updates follow Concury's concise-structure discipline: a mutation rebuilds
// only the touched VIP's entry copy-on-write and publishes a new generation
// with a bumped epoch. Because ecmp.Group removal is resilient and its
// rebuild is deterministic in the backend list, removing a DIP and later
// re-adding it returns the slot array exactly to its original state — flows
// that never hashed to the churned DIP never remap, which is what lets an
// SMux serve them statelessly across epochs.
//
// The table also keeps the immediately previous generation alive for a
// bounded drain window after each slot-changing mutation. A hybrid-mode SMux
// compares the current and previous pick for a flow and pins only the flows
// whose DIP would change across the epoch ("LB Scalability: stateful vs
// stateless" — a small stateful overlay instead of per-flow state for
// everything).
package steer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"duet/internal/ecmp"
	"duet/internal/packet"
	"duet/internal/service"
)

// Mode selects how an SMux resolves a VIP's flows against the steer table.
// The zero value is ModeStateful, today's behaviour.
type Mode uint8

const (
	// ModeStateful pins every flow in the SMux connection table on first
	// packet (Ananta §2.1). Strongest consistency, one table entry per flow.
	ModeStateful Mode = iota
	// ModeStateless resolves every packet through the steer table alone:
	// zero per-flow state. Consistent across epochs only as far as the
	// resilient table is (flows hashing to a churned DIP's slots remap).
	ModeStateless
	// ModeHybrid resolves through the steer table but pins, in a bounded
	// overlay, only the flows whose DIP would change across a table epoch;
	// pins expire once the flow goes idle or the table converges back.
	ModeHybrid

	numModes
)

// String returns the spec/flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeStateful:
		return "stateful"
	case ModeStateless:
		return "stateless"
	case ModeHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses the spec/flag spelling of a mode. The empty string parses
// to ModeStateful so specs that predate modes keep their behaviour.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "stateful":
		return ModeStateful, nil
	case "stateless":
		return ModeStateless, nil
	case "hybrid":
		return ModeHybrid, nil
	}
	return ModeStateful, fmt.Errorf("steer: unknown mode %q (want stateful|stateless|hybrid)", s)
}

// Modes lists every mode, for tests and tooling that sweep all of them.
func Modes() []Mode { return []Mode{ModeStateful, ModeStateless, ModeHybrid} }

// DefaultDrainWindow is how long (in clock seconds) the previous generation
// stays consultable after a slot-changing mutation. Long enough for every
// in-flight flow to show a packet (and get pinned by a hybrid SMux), short
// enough that back-to-back epochs don't chain generations.
const DefaultDrainWindow = 30.0

// Errors returned by table operations.
var (
	ErrVIPExists       = errors.New("steer: VIP already present")
	ErrVIPNotFound     = errors.New("steer: VIP not present")
	ErrBackendNotFound = errors.New("steer: backend not present")
	ErrNoBackend       = errors.New("steer: VIP has no live backend")
)

// Config parameterizes a Table.
type Config struct {
	// Slots is the per-VIP slot-array size; 0 means ecmp.DefaultSlots. It
	// must match the paired HMux's group size for cross-tier agreement.
	Slots int
	// DrainWindow is the previous-generation lifetime in clock seconds;
	// 0 means DefaultDrainWindow, negative disables draining entirely.
	DrainWindow float64
	// Clock supplies the drain timestamps; nil means a zero clock (drains
	// then never expire on their own — callers that care inject one).
	Clock func() float64
	// DefaultMode is the mode assigned to VIPs added without one. The zero
	// value keeps today's behaviour (stateful).
	DefaultMode Mode
}

// Entry is one VIP's immutable resolution state inside a generation: the
// flattened slot array plus the group it was materialized from (kept only
// for copy-on-write mutation; lookups never touch it).
type Entry struct {
	slots    []packet.Addr
	group    *ecmp.Group
	encaps   []packet.Addr
	backends []service.Backend
	live     map[packet.Addr]struct{} // current (non-removed) backend set
	ports    map[uint16]*Entry
	mode     Mode
}

// Mode returns the VIP's steering mode.
//
//duet:hotpath
func (e *Entry) Mode() Mode { return e.mode }

// Backends returns the VIP's backend list (removed DIPs appear zeroed, same
// as the mux bookkeeping this replaces). Callers must not mutate it.
func (e *Entry) Backends() []service.Backend { return e.backends }

// DIP resolves the tuple against the entry: port sub-entry first, then the
// slot array at hash % slots. Zero allocations.
//
//duet:hotpath
func (e *Entry) DIP(tuple packet.FiveTuple, h uint64) (packet.Addr, error) {
	sel := e
	if e.ports != nil {
		if pe, ok := e.ports[tuple.DstPort]; ok {
			sel = pe
		}
	}
	if len(sel.slots) == 0 {
		return 0, ErrNoBackend
	}
	return sel.slots[h%uint64(len(sel.slots))], nil
}

// HasLive reports whether d is a live backend of the sub-entry serving
// tuple. Hybrid muxes use it to refuse pinning a flow to a DIP the current
// generation no longer serves (a failed DIP's connections are necessarily
// terminated, paper §5.1). Zero allocations.
//
//duet:hotpath
func (e *Entry) HasLive(tuple packet.FiveTuple, d packet.Addr) bool {
	sel := e
	if e.ports != nil {
		if pe, ok := e.ports[tuple.DstPort]; ok {
			sel = pe
		}
	}
	_, ok := sel.live[d]
	return ok
}

// generation is one immutable table snapshot.
type generation struct {
	epoch uint64
	vips  map[packet.Addr]*Entry
	// prev is the immediately preceding generation (its own prev stripped,
	// so the chain never exceeds one), kept alive until drainUntil so hybrid
	// muxes can compare picks across the epoch.
	prev       *generation
	drainUntil float64
}

// Table is the shared lookup table. One instance serves a paired SMux+NMux
// on the same host; the SMux owns mutation, both tiers read.
type Table struct {
	mu  sync.Mutex // serializes writers
	gen atomic.Pointer[generation]

	slots       int
	drain       float64
	clock       func() float64
	defaultMode Mode
}

// NewTable creates an empty table.
func NewTable(cfg Config) *Table {
	if cfg.Slots <= 0 {
		cfg.Slots = ecmp.DefaultSlots
	}
	if cfg.DrainWindow == 0 {
		cfg.DrainWindow = DefaultDrainWindow
	}
	if cfg.Clock == nil {
		cfg.Clock = func() float64 { return 0 }
	}
	t := &Table{
		slots:       cfg.Slots,
		drain:       cfg.DrainWindow,
		clock:       cfg.Clock,
		defaultMode: cfg.DefaultMode,
	}
	t.gen.Store(&generation{vips: make(map[packet.Addr]*Entry)})
	return t
}

// SetClock replaces the drain clock. Call during setup, not concurrently
// with mutation.
func (t *Table) SetClock(clock func() float64) {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// DefaultMode returns the mode assigned to VIPs added without one.
func (t *Table) DefaultMode() Mode { return t.defaultMode }

// Epoch returns the table generation, bumped on every mutation.
func (t *Table) Epoch() uint64 { return t.gen.Load().epoch }

// NumVIPs returns the number of VIPs in the table.
func (t *Table) NumVIPs() int { return len(t.gen.Load().vips) }

// HasVIP reports whether the VIP is present.
func (t *Table) HasVIP(addr packet.Addr) bool {
	_, ok := t.gen.Load().vips[addr]
	return ok
}

// VIPs returns the table's VIP addresses in sorted order.
func (t *Table) VIPs() []packet.Addr {
	g := t.gen.Load()
	out := make([]packet.Addr, 0, len(g.vips))
	for a := range g.vips {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModeOf returns the VIP's mode.
func (t *Table) ModeOf(addr packet.Addr) (Mode, bool) {
	e, ok := t.gen.Load().vips[addr]
	if !ok {
		return ModeStateful, false
	}
	return e.mode, true
}

// View is a consistent read handle on one generation. Obtain once per packet
// so the current/previous comparison is against a single snapshot.
type View struct{ g *generation }

// View returns the current generation.
//
//duet:hotpath
func (t *Table) View() View { return View{g: t.gen.Load()} }

// Epoch returns the viewed generation's epoch.
func (v View) Epoch() uint64 { return v.g.epoch }

// Find returns the VIP's entry in the viewed generation.
//
//duet:hotpath
func (v View) Find(addr packet.Addr) (*Entry, bool) {
	e, ok := v.g.vips[addr]
	return e, ok
}

// DrainActive reports whether the previous generation is still consultable
// at the given clock reading.
//
//duet:hotpath
func (v View) DrainActive(now float64) bool {
	return v.g.prev != nil && now < v.g.drainUntil
}

// PrevDIP resolves the tuple against the previous generation, if one is
// still attached. Zero allocations.
//
//duet:hotpath
func (v View) PrevDIP(tuple packet.FiveTuple, h uint64) (packet.Addr, bool) {
	p := v.g.prev
	if p == nil {
		return 0, false
	}
	e, ok := p.vips[tuple.Dst]
	if !ok {
		return 0, false
	}
	d, err := e.DIP(tuple, h)
	if err != nil {
		return 0, false
	}
	return d, true
}

// Lookup resolves a tuple against the current generation: the stateless
// fast path. Zero allocations.
func (t *Table) Lookup(tuple packet.FiveTuple) (packet.Addr, error) {
	e, ok := t.gen.Load().vips[tuple.Dst]
	if !ok {
		return 0, ErrVIPNotFound
	}
	return e.DIP(tuple, ecmp.Hash(tuple))
}

// buildEntry materializes one backend set: the same ecmp.Group construction
// the muxes used inline, flattened into a slot array for lookup.
func buildEntry(backends []service.Backend, slots int, mode Mode) *Entry {
	e := &Entry{
		group:    ecmp.NewGroupSlots(slots),
		encaps:   make([]packet.Addr, len(backends)),
		backends: append([]service.Backend(nil), backends...),
		live:     make(map[packet.Addr]struct{}, len(backends)),
		mode:     mode,
	}
	for i, b := range backends {
		e.encaps[i] = b.Addr
		e.group.AddWeighted(uint32(i), b.Weight)
		e.live[b.Addr] = struct{}{}
	}
	e.slots = flatten(e.group, e.encaps, slots)
	return e
}

// flatten materializes group selection into a slot→DIP array. An empty
// group flattens to nil (ErrNoBackend on lookup).
func flatten(g *ecmp.Group, encaps []packet.Addr, slots int) []packet.Addr {
	if g.Size() == 0 {
		return nil
	}
	out := make([]packet.Addr, slots)
	for s := 0; s < slots; s++ {
		member, err := g.Select(uint64(s))
		if err != nil {
			return nil
		}
		out[s] = encaps[member]
	}
	return out
}

func (t *Table) buildVIPEntry(v *service.VIP, mode Mode) *Entry {
	e := buildEntry(v.Backends, t.slots, mode)
	if len(v.Ports) > 0 {
		e.ports = make(map[uint16]*Entry, len(v.Ports))
		for _, pr := range v.Ports {
			e.ports[pr.Port] = buildEntry(pr.Backends, t.slots, mode)
		}
	}
	return e
}

// cloneVIPs copies the current VIP map for mutation. Must hold t.mu.
func (t *Table) cloneVIPs() map[packet.Addr]*Entry {
	cur := t.gen.Load().vips
	cp := make(map[packet.Addr]*Entry, len(cur)+1)
	for k, v := range cur {
		cp[k] = v
	}
	return cp
}

// publish installs a new generation. withDrain attaches the outgoing
// generation (prev chain capped at one) for the drain window; mutations that
// cannot change any slot (mode flips) pass false and carry the existing
// drain state forward instead. Must hold t.mu.
func (t *Table) publish(vips map[packet.Addr]*Entry, withDrain bool) {
	cur := t.gen.Load()
	next := &generation{epoch: cur.epoch + 1, vips: vips}
	if withDrain && t.drain > 0 {
		next.prev = &generation{epoch: cur.epoch, vips: cur.vips}
		next.drainUntil = t.clock() + t.drain
	} else if !withDrain {
		next.prev = cur.prev
		next.drainUntil = cur.drainUntil
	}
	t.gen.Store(next)
}

// Add inserts a VIP with the table's default mode. ErrVIPExists if present.
func (t *Table) Add(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.gen.Load().vips[v.Addr]; ok {
		return ErrVIPExists
	}
	vips := t.cloneVIPs()
	vips[v.Addr] = t.buildVIPEntry(v, t.defaultMode)
	t.publish(vips, true)
	return nil
}

// Update replaces a VIP's backend set (full deterministic rebuild, exactly
// the semantics the muxes had), preserving its mode. ErrVIPNotFound if
// absent.
func (t *Table) Update(v *service.VIP) error {
	if err := v.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.gen.Load().vips[v.Addr]
	if !ok {
		return ErrVIPNotFound
	}
	vips := t.cloneVIPs()
	vips[v.Addr] = t.buildVIPEntry(v, old.mode)
	t.publish(vips, true)
	return nil
}

// Set upserts a VIP, preserving its mode when it already exists.
func (t *Table) Set(v *service.VIP) error {
	if err := t.Update(v); err == ErrVIPNotFound {
		return t.Add(v)
	} else if err != nil {
		return err
	}
	return nil
}

// RemoveVIP deletes a VIP. ErrVIPNotFound if absent.
func (t *Table) RemoveVIP(addr packet.Addr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.gen.Load().vips[addr]; !ok {
		return ErrVIPNotFound
	}
	vips := t.cloneVIPs()
	delete(vips, addr)
	t.publish(vips, true)
	return nil
}

// RemoveBackend removes a DIP resiliently: the group clone remaps only the
// removed member's slots (ecmp round-robin, same as the HMux), so surviving
// flows keep their mapping. ErrBackendNotFound if the DIP is not in the
// VIP's default backend set.
func (t *Table) RemoveBackend(vip, dip packet.Addr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.gen.Load().vips[vip]
	if !ok {
		return ErrVIPNotFound
	}
	for i, b := range e.backends {
		if b.Addr != dip {
			continue
		}
		cp := &Entry{
			group:    e.group.Clone(),
			encaps:   append([]packet.Addr(nil), e.encaps...),
			backends: append([]service.Backend(nil), e.backends...),
			live:     make(map[packet.Addr]struct{}, len(e.live)),
			ports:    e.ports,
			mode:     e.mode,
		}
		for a := range e.live {
			if a != dip {
				cp.live[a] = struct{}{}
			}
		}
		if err := cp.group.Remove(uint32(i)); err != nil {
			return err
		}
		cp.backends[i] = service.Backend{}
		cp.slots = flatten(cp.group, cp.encaps, t.slots)
		vips := t.cloneVIPs()
		vips[vip] = cp
		t.publish(vips, true)
		return nil
	}
	return ErrBackendNotFound
}

// SetMode changes a VIP's steering mode. The epoch bumps (mode is table
// state the control plane pushes) but no slot changes, so no drain window
// opens and any in-progress drain carries forward.
func (t *Table) SetMode(addr packet.Addr, mode Mode) error {
	if mode >= numModes {
		return fmt.Errorf("steer: invalid mode %d", uint8(mode))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.gen.Load().vips[addr]
	if !ok {
		return ErrVIPNotFound
	}
	if e.mode == mode {
		return nil
	}
	cp := *e
	cp.mode = mode
	vips := t.cloneVIPs()
	vips[addr] = &cp
	t.publish(vips, false)
	return nil
}

// DrainActive reports whether a previous generation is currently
// consultable.
func (t *Table) DrainActive() bool {
	t.mu.Lock()
	clock := t.clock
	t.mu.Unlock()
	return t.View().DrainActive(clock())
}

// ReleaseDrained detaches the previous generation once its drain window has
// passed, letting it be collected. Returns true if a generation was
// released. Called periodically by the owning mux's sweep.
func (t *Table) ReleaseDrained() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.gen.Load()
	if cur.prev == nil || t.clock() < cur.drainUntil {
		return false
	}
	t.gen.Store(&generation{epoch: cur.epoch, vips: cur.vips})
	return true
}
