package steer

import (
	"testing"

	"duet/internal/ecmp"
	"duet/internal/packet"
	"duet/internal/service"
)

var vipAddr = packet.MustParseAddr("10.0.0.1")

func backends(addrs ...string) []service.Backend {
	out := make([]service.Backend, len(addrs))
	for i, a := range addrs {
		out[i] = service.Backend{Addr: packet.MustParseAddr(a), Weight: 1}
	}
	return out
}

func tupleN(i uint32) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr(0x14000000 + i), Dst: vipAddr,
		SrcPort: uint16(1024 + i%40000), DstPort: 80, Proto: packet.ProtoTCP,
	}
}

func mustAdd(t *testing.T, tab *Table, v *service.VIP) {
	t.Helper()
	if err := tab.Add(v); err != nil {
		t.Fatal(err)
	}
}

// TestLookupMatchesECMPGroup: the flattened slot array must reproduce the
// inline group.Select every mux used before the refactor — that identity is
// what keeps cross-tier fall-through byte-identical.
func TestLookupMatchesECMPGroup(t *testing.T) {
	bs := backends("100.0.0.1", "100.0.0.2", "100.0.0.3", "100.0.0.4", "100.0.0.5")
	tab := NewTable(Config{})
	mustAdd(t, tab, &service.VIP{Addr: vipAddr, Backends: bs})

	g := ecmp.NewGroup()
	for i, b := range bs {
		g.AddWeighted(uint32(i), b.Weight)
	}
	for i := uint32(0); i < 5000; i++ {
		tu := tupleN(i)
		got, err := tab.Lookup(tu)
		if err != nil {
			t.Fatal(err)
		}
		member, err := g.SelectTuple(tu)
		if err != nil {
			t.Fatal(err)
		}
		if want := bs[member].Addr; got != want {
			t.Fatalf("tuple %d: steer %s, group %s", i, got, want)
		}
	}
}

// TestRemoveBackendResilient: removing a DIP must remap only the flows that
// hashed to it (paper §5.1, Broadcom resilient hashing).
func TestRemoveBackendResilient(t *testing.T) {
	bs := backends("100.0.0.1", "100.0.0.2", "100.0.0.3", "100.0.0.4")
	tab := NewTable(Config{})
	mustAdd(t, tab, &service.VIP{Addr: vipAddr, Backends: bs})
	victim := bs[1].Addr

	before := make(map[uint32]packet.Addr)
	for i := uint32(0); i < 4000; i++ {
		d, err := tab.Lookup(tupleN(i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = d
	}
	if err := tab.RemoveBackend(vipAddr, victim); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4000; i++ {
		d, err := tab.Lookup(tupleN(i))
		if err != nil {
			t.Fatal(err)
		}
		if before[i] == victim {
			if d == victim {
				t.Fatalf("flow %d still mapped to removed DIP", i)
			}
			continue
		}
		if d != before[i] {
			t.Fatalf("flow %d remapped %s→%s though its DIP survived", i, before[i], d)
		}
	}
}

// TestRemoveReAddConverges: because the full rebuild is deterministic in the
// backend list, remove + re-add returns the table to its exact original slot
// assignment. Flows never mapped to the churned DIP never remap — the
// property that makes stateless mode safe under resilient churn.
func TestRemoveReAddConverges(t *testing.T) {
	bs := backends("100.0.0.1", "100.0.0.2", "100.0.0.3")
	tab := NewTable(Config{})
	mustAdd(t, tab, &service.VIP{Addr: vipAddr, Backends: bs})

	orig := make(map[uint32]packet.Addr)
	for i := uint32(0); i < 3000; i++ {
		orig[i], _ = tab.Lookup(tupleN(i))
	}
	e0 := tab.Epoch()
	if err := tab.RemoveBackend(vipAddr, bs[2].Addr); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(&service.VIP{Addr: vipAddr, Backends: bs}); err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != e0+2 {
		t.Fatalf("epoch = %d, want %d", tab.Epoch(), e0+2)
	}
	for i := uint32(0); i < 3000; i++ {
		d, err := tab.Lookup(tupleN(i))
		if err != nil {
			t.Fatal(err)
		}
		if d != orig[i] {
			t.Fatalf("flow %d did not converge: %s→%s", i, orig[i], d)
		}
	}
}

// TestDrainWindow: a slot-changing mutation keeps the previous generation
// consultable until the injected clock passes the window; ReleaseDrained
// then detaches it. Hybrid muxes use exactly this pair of lookups.
func TestDrainWindow(t *testing.T) {
	now := 100.0
	tab := NewTable(Config{DrainWindow: 30, Clock: func() float64 { return now }})
	bs := backends("100.0.0.1", "100.0.0.2", "100.0.0.3")
	mustAdd(t, tab, &service.VIP{Addr: vipAddr, Backends: bs})
	if err := tab.RemoveBackend(vipAddr, bs[0].Addr); err != nil {
		t.Fatal(err)
	}

	v := tab.View()
	if !v.DrainActive(now) {
		t.Fatal("drain not active after mutation")
	}
	// Some flow must differ between generations (the victim's flows).
	changed := false
	for i := uint32(0); i < 2000 && !changed; i++ {
		tu := tupleN(i)
		h := ecmp.Hash(tu)
		prev, ok := v.PrevDIP(tu, h)
		if !ok {
			t.Fatal("prev generation lookup failed")
		}
		e, _ := v.Find(vipAddr)
		cur, err := e.DIP(tu, h)
		if err != nil {
			t.Fatal(err)
		}
		changed = prev != cur
	}
	if !changed {
		t.Fatal("no flow changed DIP across the epoch")
	}
	if tab.ReleaseDrained() {
		t.Fatal("drain released before the window passed")
	}
	now += 31
	if v.DrainActive(now) {
		t.Fatal("drain still active past the window")
	}
	if !tab.ReleaseDrained() {
		t.Fatal("drain not released after the window")
	}
	if _, ok := tab.View().PrevDIP(tupleN(0), ecmp.Hash(tupleN(0))); ok {
		t.Fatal("previous generation survived release")
	}
	if tab.ReleaseDrained() {
		t.Fatal("second release reported work")
	}
}

func TestModes(t *testing.T) {
	tab := NewTable(Config{DefaultMode: ModeHybrid})
	mustAdd(t, tab, &service.VIP{Addr: vipAddr, Backends: backends("100.0.0.1")})
	if m, ok := tab.ModeOf(vipAddr); !ok || m != ModeHybrid {
		t.Fatalf("default mode = %v, %v", m, ok)
	}
	e0 := tab.Epoch()
	if err := tab.SetMode(vipAddr, ModeStateless); err != nil {
		t.Fatal(err)
	}
	if m, _ := tab.ModeOf(vipAddr); m != ModeStateless {
		t.Fatalf("mode = %v", m)
	}
	if tab.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", tab.Epoch(), e0+1)
	}
	if err := tab.SetMode(vipAddr, ModeStateless); err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != e0+1 {
		t.Fatal("no-op mode set bumped the epoch")
	}
	if err := tab.SetMode(packet.MustParseAddr("9.9.9.9"), ModeHybrid); err != ErrVIPNotFound {
		t.Fatalf("got %v", err)
	}

	for _, m := range Modes() {
		parsed, err := ParseMode(m.String())
		if err != nil || parsed != m {
			t.Fatalf("round trip %v: %v %v", m, parsed, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeStateful {
		t.Fatalf("empty mode: %v %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
}

func TestPortRules(t *testing.T) {
	tab := NewTable(Config{})
	mustAdd(t, tab, &service.VIP{
		Addr:     vipAddr,
		Backends: backends("100.0.0.1"),
		Ports:    []service.PortRule{{Port: 80, Backends: backends("100.0.1.1")}},
	})
	tu := tupleN(0)
	if d, _ := tab.Lookup(tu); d != packet.MustParseAddr("100.0.1.1") {
		t.Fatalf("port rule not applied: %s", d)
	}
	tu.DstPort = 22
	if d, _ := tab.Lookup(tu); d != packet.MustParseAddr("100.0.0.1") {
		t.Fatalf("default set not applied: %s", d)
	}
}

func TestErrors(t *testing.T) {
	tab := NewTable(Config{})
	v := &service.VIP{Addr: vipAddr, Backends: backends("100.0.0.1")}
	if err := tab.Update(v); err != ErrVIPNotFound {
		t.Fatalf("got %v", err)
	}
	if err := tab.RemoveVIP(vipAddr); err != ErrVIPNotFound {
		t.Fatalf("got %v", err)
	}
	mustAdd(t, tab, v)
	if err := tab.Add(v); err != ErrVIPExists {
		t.Fatalf("got %v", err)
	}
	if err := tab.RemoveBackend(vipAddr, packet.MustParseAddr("6.6.6.6")); err != ErrBackendNotFound {
		t.Fatalf("got %v", err)
	}
	if err := tab.RemoveBackend(packet.MustParseAddr("9.9.9.9"), 1); err != ErrVIPNotFound {
		t.Fatalf("got %v", err)
	}
	if err := tab.RemoveBackend(vipAddr, packet.MustParseAddr("100.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Lookup(tupleN(0)); err != ErrNoBackend {
		t.Fatalf("empty backend set: got %v", err)
	}
	if err := tab.Set(v); err != nil {
		t.Fatal(err)
	}
	if d, err := tab.Lookup(tupleN(0)); err != nil || d != packet.MustParseAddr("100.0.0.1") {
		t.Fatalf("after Set: %s, %v", d, err)
	}
	if err := tab.RemoveVIP(vipAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Lookup(tupleN(0)); err != ErrVIPNotFound {
		t.Fatalf("got %v", err)
	}
}

// TestLookupZeroAlloc is the acceptance gate: the stateless steer lookup
// must not allocate.
func TestLookupZeroAlloc(t *testing.T) {
	tab := NewTable(Config{})
	mustAdd(t, tab, &service.VIP{
		Addr:     vipAddr,
		Backends: backends("100.0.0.1", "100.0.0.2", "100.0.0.3"),
		Ports:    []service.PortRule{{Port: 443, Backends: backends("100.0.1.1")}},
	})
	tu := tupleN(7)
	h := ecmp.Hash(tu)
	v := tab.View()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := tab.Lookup(tu); err != nil {
			t.Fatal(err)
		}
		vw := tab.View()
		e, ok := vw.Find(tu.Dst)
		if !ok {
			t.Fatal("vip missing")
		}
		if _, err := e.DIP(tu, h); err != nil {
			t.Fatal(err)
		}
		if _, ok := v.PrevDIP(tu, h); ok {
			_ = ok
		}
	})
	if allocs != 0 {
		t.Fatalf("steer lookup: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkLookup(b *testing.B) {
	tab := NewTable(Config{})
	if err := tab.Add(&service.VIP{Addr: vipAddr, Backends: backends("100.0.0.1", "100.0.0.2", "100.0.0.3", "100.0.0.4")}); err != nil {
		b.Fatal(err)
	}
	tu := tupleN(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Lookup(tu); err != nil {
			b.Fatal(err)
		}
	}
}
