package duet

import (
	"duet/internal/assign"
	"duet/internal/controller"
	"duet/internal/core"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/steer"
	"duet/internal/topology"
	"duet/internal/workload"
)

// Re-exported core types. The aliases make the public API importable as a
// single package while the implementation stays modular.
type (
	// Addr is an IPv4 address.
	Addr = packet.Addr
	// Prefix is an IPv4 CIDR prefix.
	Prefix = packet.Prefix
	// FiveTuple identifies a flow.
	FiveTuple = packet.FiveTuple

	// VIP configures one virtual IP and its backends.
	VIP = service.VIP
	// Backend is one DIP behind a VIP.
	Backend = service.Backend
	// PortRule maps a destination port to its own backend set.
	PortRule = service.PortRule

	// Cluster is a fully wired Duet deployment.
	Cluster = core.Cluster
	// ClusterConfig sizes a Cluster.
	ClusterConfig = core.Config
	// Delivery is the result of pushing a packet through the datapath.
	Delivery = core.Delivery

	// Controller drives placement and migration over a Cluster.
	Controller = controller.Controller
	// AssignOptions parameterizes the placement engine.
	AssignOptions = assign.Options

	// TopologyConfig sizes the fabric.
	TopologyConfig = topology.Config
	// SwitchID identifies a fabric switch.
	SwitchID = topology.SwitchID

	// Workload is a VIP population with a traffic trace.
	Workload = workload.Workload
	// WorkloadConfig parameterizes trace generation.
	WorkloadConfig = workload.Config

	// SteerMode selects how the SMux keeps a VIP's connections consistent
	// across backend changes (see internal/steer).
	SteerMode = steer.Mode
)

// Per-VIP steering modes.
const (
	// ModeStateful pins every connection in the SMux connection table.
	ModeStateful = steer.ModeStateful
	// ModeStateless resolves every packet through the shared lookup table.
	ModeStateless = steer.ModeStateless
	// ModeHybrid is stateless plus a bounded overlay pinning only the
	// connections whose DIP would change across a table epoch.
	ModeHybrid = steer.ModeHybrid
)

// ParseSteerMode parses a mode name ("stateful", "stateless", "hybrid";
// empty means stateful).
func ParseSteerMode(s string) (SteerMode, error) { return steer.ParseMode(s) }

// SteerModes lists every steering mode.
func SteerModes() []SteerMode { return steer.Modes() }

// MustParseAddr parses a dotted-quad IPv4 address, panicking on error.
func MustParseAddr(s string) Addr { return packet.MustParseAddr(s) }

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return packet.ParseAddr(s) }

// MustParsePrefix parses an "a.b.c.d/len" prefix, panicking on error.
func MustParsePrefix(s string) Prefix { return packet.MustParsePrefix(s) }

// DefaultClusterConfig returns a scaled-down cluster ready for examples and
// experimentation.
func DefaultClusterConfig() ClusterConfig { return core.DefaultConfig() }

// NewCluster builds a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.New(cfg) }

// DefaultAssignOptions returns the paper's placement parameters (§4).
func DefaultAssignOptions() AssignOptions { return assign.DefaultOptions() }

// NewController creates the Duet controller over a cluster.
func NewController(c *Cluster, opts AssignOptions) *Controller {
	return controller.New(c, opts)
}

// GenerateWorkload builds a synthetic trace matched to the paper's
// production traffic (Figure 15).
func GenerateWorkload(cfg WorkloadConfig, c *Cluster) (*Workload, error) {
	return workload.Generate(cfg, c.Topo)
}

// DefaultWorkloadConfig returns trace-generation defaults.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// BuildUDP constructs a complete IPv4+UDP packet for a flow — handy for
// feeding Cluster.Deliver.
func BuildUDP(t FiveTuple, payload []byte) []byte { return packet.BuildUDP(t, payload) }

// BuildTCP constructs a complete IPv4+TCP packet for a flow.
func BuildTCP(t FiveTuple, flags uint8, payload []byte) []byte {
	return packet.BuildTCP(t, flags, payload)
}

// TCP flag bits for BuildTCP.
const (
	TCPFin = packet.TCPFin
	TCPSyn = packet.TCPSyn
	TCPRst = packet.TCPRst
	TCPPsh = packet.TCPPsh
	TCPAck = packet.TCPAck
)
