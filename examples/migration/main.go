// Migration: drives the Duet controller over a multi-epoch traffic trace.
// Each epoch the controller re-runs the Sticky placement algorithm (§4.2)
// and migrates moved VIPs through the SMux stepping stone — the mechanism
// that makes Figure 4's memory deadlock impossible. The example prints how
// much traffic rides HMuxes, how little shuffles between epochs, and proves
// in-flight connections never remap.
package main

import (
	"fmt"
	"log"

	"duet"
)

func main() {
	cluster, err := duet.NewCluster(duet.ClusterConfig{
		Topology: duet.TopologyConfig{
			Containers:       4,
			ToRsPerContainer: 8,
			AggsPerContainer: 4,
			Cores:            8,
			ServersPerToR:    20,
		},
		NumSMuxes: 4,
		Aggregate: duet.MustParsePrefix("10.0.0.0/8"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 6-epoch synthetic trace (each epoch = 10 simulated minutes) with
	// per-VIP traffic drift, matched to the paper's production trace shape.
	wl, err := duet.GenerateWorkload(duet.WorkloadConfig{
		NumVIPs:      120,
		TotalRate:    3e11,
		Epochs:       6,
		Seed:         42,
		TrafficSkew:  1.6,
		MaxDIPs:      60,
		InternetFrac: 0.3,
		ChurnStdDev:  0.35,
	}, cluster)
	if err != nil {
		log.Fatal(err)
	}

	ctl := duet.NewController(cluster, duet.DefaultAssignOptions())
	if err := ctl.SyncVIPs(wl, 8, nil); err != nil {
		log.Fatal(err)
	}

	// Establish connections against the first VIP before any placement.
	vip := wl.VIPs[0].Addr
	pinned := make(map[int]duet.Addr)
	for i := 0; i < 500; i++ {
		d, err := cluster.Deliver(flow(vip, i))
		if err != nil {
			log.Fatal(err)
		}
		pinned[i] = d.DIP
	}

	fmt.Println("epoch  traffic-on-HMux  moved-VIPs  shuffled-traffic")
	for e := 0; e < wl.NumEpochs(); e++ {
		rep, err := ctl.RunEpoch(wl, e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %14.1f%%  %10d  %15.1f%%\n",
			e, 100*rep.AssignedFraction, rep.Moved,
			100*rep.ShuffledRate/wl.TotalRate(e))

		// The established connections must survive every migration wave.
		for i := 0; i < 500; i++ {
			d, err := cluster.Deliver(flow(vip, i))
			if err != nil {
				log.Fatalf("epoch %d: connection %d broken: %v", e, i, err)
			}
			if d.DIP != pinned[i] {
				log.Fatalf("epoch %d: connection %d remapped %s→%s", e, i, pinned[i], d.DIP)
			}
		}
	}
	fmt.Println("\nall 500 connections kept their DIP through every epoch's migrations")

	home, onHMux := cluster.HomeOf(vip)
	if onHMux {
		fmt.Printf("VIP %s currently on HMux %s\n", vip, cluster.Topo.Switch(home).Name)
	} else {
		fmt.Printf("VIP %s currently on the SMux backstop\n", vip)
	}
}

func flow(vip duet.Addr, i int) []byte {
	return duet.BuildTCP(duet.FiveTuple{
		Src: duet.MustParseAddr("30.0.0.1") + duet.Addr(i), Dst: vip,
		SrcPort: uint16(3000 + i), DstPort: 80, Proto: 6,
	}, duet.TCPAck, nil)
}
