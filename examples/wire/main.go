// Wire: runs the Duet dataplane over real UDP sockets on loopback. The
// "fabric" is UDP: a software mux daemon listens on one socket, host agents
// (one per DIP) on others, and a client crafts raw IPv4 packets with the
// library's packet package. The client observes genuine direct server
// return — responses arrive straight from the server socket with the VIP as
// the inner source, never crossing the mux (paper §2.1).
//
//	client ──(IPv4-in-UDP)──► smux daemon ──(IP-in-IP-in-UDP)──► host agent
//	   ▲                                                            │
//	   └──────────────── DSR response (VIP-sourced) ────────────────┘
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"duet/internal/hostagent"
	"duet/internal/packet"
	"duet/internal/service"
	"duet/internal/smux"
	"duet/internal/telemetry"
)

var (
	vip  = packet.MustParseAddr("10.0.0.1")
	dips = []packet.Addr{
		packet.MustParseAddr("100.0.0.1"),
		packet.MustParseAddr("100.0.0.2"),
		packet.MustParseAddr("100.0.0.3"),
	}

	// One registry + flight recorder shared by the mux and every host agent;
	// a counter snapshot is printed when the demo exits.
	reg = telemetry.NewRegistry()
	rec = telemetry.NewRecorder(telemetry.DefaultRecorderSize)
)

func main() {
	// The mux daemon's socket — the load balancer's position in the fabric.
	muxConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer muxConn.Close()

	// One host-agent socket per DIP; the registry maps DIP → UDP address
	// (the fabric's "routing table" for encapsulated packets).
	registry := make(map[packet.Addr]*net.UDPAddr)
	var wg sync.WaitGroup
	for _, dip := range dips {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		registry[dip] = conn.LocalAddr().(*net.UDPAddr)
		wg.Add(1)
		go hostAgentLoop(&wg, conn, dip)
	}

	// The software mux: full VIP map, shared hash, IP-in-IP encap.
	mux := smux.New(smux.DefaultConfig(packet.MustParseAddr("192.168.0.1")))
	mux.SetTelemetry(reg, rec, 1)
	backends := make([]service.Backend, len(dips))
	for i, d := range dips {
		backends[i] = service.Backend{Addr: d, Weight: 1}
	}
	if err := mux.AddVIP(&service.VIP{Addr: vip, Backends: backends}); err != nil {
		log.Fatal(err)
	}
	wg.Add(1)
	go muxLoop(&wg, muxConn, mux, registry)

	// Client: open a socket, fire requests at the VIP through the mux, and
	// wait for DSR responses.
	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	muxAddr := muxConn.LocalAddr().(*net.UDPAddr)

	fmt.Printf("mux at %v, %d host agents, client at %v\n\n",
		muxAddr, len(dips), client.LocalAddr())

	counts := map[string]int{}
	const requests = 60
	for i := 0; i < requests; i++ {
		tuple := packet.FiveTuple{
			Src: packet.MustParseAddr("30.0.0.1"), Dst: vip,
			SrcPort: uint16(2000 + i), DstPort: 80, Proto: packet.ProtoTCP,
		}
		// The raw IPv4 request rides UDP to the mux; the client's reply-to
		// address travels in a tiny header (stands in for the fabric).
		req := packet.BuildTCP(tuple, packet.TCPSyn, []byte("ping"))
		if _, err := client.WriteToUDP(req, muxAddr); err != nil {
			log.Fatal(err)
		}

		// DSR response arrives directly from the host agent's socket.
		client.SetReadDeadline(time.Now().Add(2 * time.Second)) //duet:allow noclock example client; net deadlines need wall time
		buf := make([]byte, 2048)
		n, from, err := client.ReadFromUDP(buf)
		if err != nil {
			log.Fatalf("request %d: no response: %v", i, err)
		}
		var ip packet.IPv4
		if err := ip.DecodeFromBytes(buf[:n]); err != nil {
			log.Fatal(err)
		}
		if ip.Src != vip {
			log.Fatalf("response source %s, want VIP %s (DSR broken)", ip.Src, vip)
		}
		counts[from.String()]++
	}
	fmt.Printf("%d requests, %d DSR responses, all VIP-sourced\n", requests, requests)
	fmt.Println("responses arrived directly from these host-agent sockets (never the mux):")
	for addr, n := range counts {
		fmt.Printf("  %-22s %d\n", addr, n)
	}
	muxConn.Close()

	fmt.Println("\ntelemetry snapshot (what `duetctl top` shows for a cluster):")
	if err := reg.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// muxLoop is the SMux daemon: decode, load-balance, encapsulate, forward to
// the chosen DIP's host-agent socket. The client's UDP source address is
// appended after the packet so the host agent can DSR straight back (in a
// real deployment the inner packet's source IP serves this purpose).
func muxLoop(wg *sync.WaitGroup, conn *net.UDPConn, mux *smux.Mux, registry map[packet.Addr]*net.UDPAddr) {
	defer wg.Done()
	buf := make([]byte, 4096)
	out := make([]byte, 0, 4096)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		res, err := mux.Process(buf[:n], out[:0])
		if err != nil {
			log.Printf("mux: drop: %v", err)
			continue
		}
		dst, ok := registry[res.Encap]
		if !ok {
			log.Printf("mux: no route to DIP %s", res.Encap)
			continue
		}
		// Frame: [encapped packet][client ip:port as 6 bytes].
		frame := append(append([]byte(nil), res.Packet...), encodeAddr(from)...)
		if _, err := conn.WriteToUDP(frame, dst); err != nil {
			log.Printf("mux: forward: %v", err)
		}
	}
}

// hostAgentLoop terminates the tunnel, builds a response, DSR-rewrites it
// and sends it DIRECTLY to the client socket.
func hostAgentLoop(wg *sync.WaitGroup, conn *net.UDPConn, dip packet.Addr) {
	defer wg.Done()
	agent := hostagent.New(dip)
	agent.SetTelemetry(reg, rec, uint32(dip))
	if err := agent.RegisterDIP(vip, dip); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 6 {
			continue
		}
		clientAddr := decodeAddr(buf[n-6 : n])
		d, err := agent.Receive(buf[:n-6], nil)
		if err != nil {
			log.Printf("agent %s: %v", dip, err)
			continue
		}
		tuple, err := packet.ExtractFiveTuple(d.Packet)
		if err != nil {
			continue
		}
		// Server response: DIP → client, then DSR rewrite DIP→VIP.
		resp := packet.BuildTCP(packet.FiveTuple{
			Src: d.DIP, Dst: tuple.Src,
			SrcPort: 80, DstPort: tuple.SrcPort, Proto: packet.ProtoTCP,
		}, packet.TCPAck, []byte("pong"))
		dsr, err := agent.SendDSR(resp, nil)
		if err != nil {
			log.Printf("agent %s: DSR: %v", dip, err)
			continue
		}
		if _, err := conn.WriteToUDP(dsr, clientAddr); err != nil {
			return
		}
	}
}

func encodeAddr(a *net.UDPAddr) []byte {
	ip4 := a.IP.To4()
	return []byte{ip4[0], ip4[1], ip4[2], ip4[3], byte(a.Port >> 8), byte(a.Port)}
}

func decodeAddr(b []byte) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(b[0], b[1], b[2], b[3]),
		Port: int(b[4])<<8 | int(b[5]),
	}
}
