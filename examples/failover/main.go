// Failover: reproduces the paper's §5.1/§7.2 story end to end. A VIP lives
// on a hardware mux; the switch dies; traffic falls through to the SMux
// backstop with every established connection still mapped to its original
// DIP (shared hash); the controller then re-places the VIP on a healthy
// switch.
package main

import (
	"fmt"
	"log"

	"duet"
)

func main() {
	cluster, err := duet.NewCluster(duet.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}

	vip := duet.MustParseAddr("10.0.0.1")
	if err := cluster.AddVIP(&duet.VIP{
		Addr: vip,
		Backends: []duet.Backend{
			{Addr: duet.MustParseAddr("100.0.0.1"), Weight: 1},
			{Addr: duet.MustParseAddr("100.0.0.2"), Weight: 1},
			{Addr: duet.MustParseAddr("100.0.0.3"), Weight: 1},
			{Addr: duet.MustParseAddr("100.0.0.4"), Weight: 1},
		},
	}); err != nil {
		log.Fatal(err)
	}

	sw := cluster.Topo.AggID(0, 0)
	if err := cluster.AssignToHMux(vip, sw); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VIP %s assigned to HMux %s\n", vip, cluster.Topo.Switch(sw).Name)

	// Establish 2000 connections and remember where each flow landed.
	before := make(map[int]duet.Addr)
	for i := 0; i < 2000; i++ {
		d, err := cluster.Deliver(flowPacket(vip, i))
		if err != nil {
			log.Fatal(err)
		}
		before[i] = d.DIP
	}
	fmt.Printf("established %d connections through the HMux\n", len(before))

	// The switch dies. The fabric withdraws its routes; LPM falls back to
	// the SMux aggregate — no operator action needed.
	cluster.FailSwitch(sw)
	fmt.Printf("\n!! switch %s failed\n", cluster.Topo.Switch(sw).Name)

	remapped := 0
	viaSMux := 0
	for i := 0; i < 2000; i++ {
		d, err := cluster.Deliver(flowPacket(vip, i))
		if err != nil {
			log.Fatalf("connection %d dropped: %v", i, err)
		}
		if d.DIP != before[i] {
			remapped++
		}
		if d.Hops[0].Kind == "smux" {
			viaSMux++
		}
	}
	fmt.Printf("after failover: %d/2000 connections via SMux backstop, %d remapped\n",
		viaSMux, remapped)
	if remapped != 0 {
		log.Fatal("BUG: shared hash should preserve every connection")
	}

	// Recovery: the switch returns empty; the controller re-assigns.
	cluster.RecoverSwitch(sw)
	newHome := cluster.Topo.AggID(1, 1)
	if err := cluster.AssignToHMux(vip, newHome); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswitch recovered; controller re-placed VIP on %s\n",
		cluster.Topo.Switch(newHome).Name)

	remapped = 0
	for i := 0; i < 2000; i++ {
		d, err := cluster.Deliver(flowPacket(vip, i))
		if err != nil {
			log.Fatal(err)
		}
		if d.DIP != before[i] {
			remapped++
		}
	}
	fmt.Printf("after re-placement: %d remapped connections (want 0)\n", remapped)
}

func flowPacket(vip duet.Addr, i int) []byte {
	tuple := duet.FiveTuple{
		Src:     duet.MustParseAddr("30.0.0.1") + duet.Addr(i),
		Dst:     vip,
		SrcPort: uint16(2000 + i),
		DstPort: 443,
		Proto:   6,
	}
	return duet.BuildTCP(tuple, duet.TCPAck, []byte("data"))
}
