// SNAT: reproduces §5.2's stateless outbound-connection trick. Switches
// cannot keep per-connection NAT state, so the host agent picks the source
// port for an outbound connection such that the hash of the *inbound
// response* 5-tuple lands on its own DIP's ECMP entry. The example allocates
// ports on one host, then builds the actual response packets and pushes them
// through a real HMux to prove every one is tunneled straight back.
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/hmux"
	"duet/internal/hostagent"
	"duet/internal/packet"
	"duet/internal/service"
)

func main() {
	vip := duet.MustParseAddr("10.0.0.1")
	backends := []service.Backend{
		{Addr: duet.MustParseAddr("100.0.0.1"), Weight: 1},
		{Addr: duet.MustParseAddr("100.0.0.2"), Weight: 1},
		{Addr: duet.MustParseAddr("100.0.0.3"), Weight: 1},
		{Addr: duet.MustParseAddr("100.0.0.4"), Weight: 1},
	}

	// The switch the VIP is assigned to.
	hm := hmux.New(hmux.DefaultConfig(duet.MustParseAddr("172.16.0.1")))
	if err := hm.AddVIP(&service.VIP{Addr: vip, Backends: backends}); err != nil {
		log.Fatal(err)
	}

	// Our server is DIP #3. The controller hands its host agent a port
	// range; the agent shares the HMux's hash function.
	self := backends[2].Addr
	snat := hostagent.NewSNAT(vip, self, backends)
	snat.AssignRange(40000, 48000)

	remote := duet.MustParseAddr("8.8.8.8")
	fmt.Printf("DIP %s opening outbound connections to %s via VIP %s\n\n", self, remote, vip)
	fmt.Println("remote-port  chosen-src-port  response-tunneled-to  ok")

	good := 0
	for i := 0; i < 12; i++ {
		remotePort := uint16(443 + i)
		port, err := snat.AllocatePort(remote, remotePort, packet.ProtoTCP)
		if err != nil {
			log.Fatal(err)
		}
		// Build the response packet exactly as it would arrive from the
		// Internet at the HMux: remote:remotePort → vip:port.
		resp := duet.BuildTCP(duet.FiveTuple{
			Src: remote, Dst: vip,
			SrcPort: remotePort, DstPort: port, Proto: packet.ProtoTCP,
		}, duet.TCPAck|duet.TCPSyn, nil)
		res, err := hm.Process(resp, nil)
		if err != nil {
			log.Fatal(err)
		}
		ok := res.Encap == self
		if ok {
			good++
		}
		fmt.Printf("%11d  %15d  %20s  %v\n", remotePort, port, res.Encap, ok)
	}
	fmt.Printf("\n%d/12 responses returned to the right DIP with ZERO state on the switch\n", good)
	fmt.Printf("(the agent probed %.1f candidate ports per allocation — ~#DIPs, as expected)\n",
		float64(snat.Probed())/12)
	if good != 12 {
		log.Fatal("BUG: hash-consistent SNAT failed")
	}
}
