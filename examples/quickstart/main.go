// Quickstart: build a small Duet cluster, configure a VIP with three DIPs,
// push real packets through the datapath, and watch the VIP move from the
// SMux backstop onto a hardware mux — the hybrid design of the paper in
// ~60 lines of API use.
package main

import (
	"fmt"
	"log"

	"duet"
)

func main() {
	// A scaled-down datacenter: FatTree fabric, HMux on every switch,
	// 8 SMuxes announcing the 10.0.0.0/8 aggregate as the backstop.
	cluster, err := duet.NewCluster(duet.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}

	// One service: VIP 10.0.0.1 backed by three DIPs.
	vip := duet.MustParseAddr("10.0.0.1")
	err = cluster.AddVIP(&duet.VIP{
		Addr: vip,
		Backends: []duet.Backend{
			{Addr: duet.MustParseAddr("100.0.0.1"), Weight: 1},
			{Addr: duet.MustParseAddr("100.0.0.2"), Weight: 1},
			{Addr: duet.MustParseAddr("100.0.0.3"), Weight: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// New VIPs land on the SMuxes first (paper §5.2). Send 9000 flows and
	// show the per-DIP split.
	fmt.Println("== phase 1: VIP served by the SMux backstop ==")
	counts := sendFlows(cluster, vip, 9000, 0)
	for dip, n := range counts {
		fmt.Printf("  DIP %-12s %5d flows (%.1f%%)\n", dip, n, 100*float64(n)/9000)
	}

	// Move the VIP into the switch dataplane: one host-table entry, three
	// ECMP entries, three tunneling entries on ToR 0-0.
	sw := cluster.Topo.TorID(0, 0)
	if err := cluster.AssignToHMux(vip, sw); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== phase 2: VIP assigned to HMux %s ==\n", cluster.Topo.Switch(sw).Name)
	st := cluster.HMuxes[sw].Stats()
	fmt.Printf("  switch tables: host %d/%d  ecmp %d/%d  tunnel %d/%d\n",
		st.HostUsed, st.HostCap, st.ECMPUsed, st.ECMPCap, st.TunnelUsed, st.TunnelCap)

	counts = sendFlows(cluster, vip, 9000, 0)
	for dip, n := range counts {
		fmt.Printf("  DIP %-12s %5d flows (%.1f%%)\n", dip, n, 100*float64(n)/9000)
	}

	// The critical invariant: the same flow maps to the same DIP on both
	// mux types, so the migration above broke zero connections.
	tuple := duet.FiveTuple{
		Src: duet.MustParseAddr("30.0.0.1"), Dst: vip,
		SrcPort: 5555, DstPort: 80, Proto: 6,
	}
	d, err := cluster.Deliver(duet.BuildTCP(tuple, duet.TCPSyn, []byte("GET /")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflow %v\n  hops:", tuple)
	for _, h := range d.Hops {
		fmt.Printf(" %s(%s)", h.Kind, h.Node)
	}
	fmt.Printf("\n  delivered to DIP %s on host %s\n", d.DIP, d.Host)
}

// sendFlows pushes n distinct TCP flows at the VIP and counts DIP choices.
func sendFlows(cluster *duet.Cluster, vip duet.Addr, n int, saltHigh uint16) map[string]int {
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		tuple := duet.FiveTuple{
			Src:     duet.MustParseAddr("30.0.0.1") + duet.Addr(i),
			Dst:     vip,
			SrcPort: uint16(1024+i) ^ saltHigh,
			DstPort: 80,
			Proto:   6,
		}
		d, err := cluster.Deliver(duet.BuildTCP(tuple, duet.TCPSyn, nil))
		if err != nil {
			log.Fatal(err)
		}
		counts[d.DIP.String()]++
	}
	return counts
}
