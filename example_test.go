package duet_test

import (
	"fmt"

	"duet"
)

// ExampleCluster_Deliver shows the end-to-end datapath: a VIP served by the
// SMux backstop, then by a hardware mux, with the same flow mapping to the
// same DIP in both phases (the shared-hash invariant).
func ExampleCluster_Deliver() {
	cluster, err := duet.NewCluster(duet.ClusterConfig{
		Topology: duet.TopologyConfig{
			Containers:       2,
			ToRsPerContainer: 2,
			AggsPerContainer: 2,
			Cores:            2,
			ServersPerToR:    4,
		},
		NumSMuxes: 2,
		Aggregate: duet.MustParsePrefix("10.0.0.0/8"),
	})
	if err != nil {
		panic(err)
	}

	vip := duet.MustParseAddr("10.0.0.1")
	if err := cluster.AddVIP(&duet.VIP{Addr: vip, Backends: []duet.Backend{
		{Addr: duet.MustParseAddr("100.0.0.1"), Weight: 1},
		{Addr: duet.MustParseAddr("100.0.0.2"), Weight: 1},
	}}); err != nil {
		panic(err)
	}

	pkt := duet.BuildTCP(duet.FiveTuple{
		Src: duet.MustParseAddr("30.0.0.9"), Dst: vip,
		SrcPort: 5555, DstPort: 80, Proto: 6,
	}, duet.TCPSyn, nil)

	d1, err := cluster.Deliver(pkt)
	if err != nil {
		panic(err)
	}
	fmt.Println("phase 1:", d1.Hops[0].Kind, "->", d1.DIP)

	if err := cluster.AssignToHMux(vip, cluster.Topo.TorID(0, 0)); err != nil {
		panic(err)
	}
	d2, err := cluster.Deliver(pkt)
	if err != nil {
		panic(err)
	}
	fmt.Println("phase 2:", d2.Hops[0].Kind, "->", d2.DIP)
	fmt.Println("same DIP across migration:", d1.DIP == d2.DIP)

	// Output:
	// phase 1: smux -> 100.0.0.2
	// phase 2: hmux -> 100.0.0.2
	// same DIP across migration: true
}

// ExampleGenerateWorkload shows trace generation and its headline skew.
func ExampleGenerateWorkload() {
	cluster, err := duet.NewCluster(duet.DefaultClusterConfig())
	if err != nil {
		panic(err)
	}
	cfg := duet.WorkloadConfig{
		NumVIPs:      100,
		TotalRate:    1e11,
		Epochs:       2,
		Seed:         7,
		TrafficSkew:  1.6,
		MaxDIPs:      50,
		InternetFrac: 0.3,
		ChurnStdDev:  0.25,
	}
	w, err := duet.GenerateWorkload(cfg, cluster)
	if err != nil {
		panic(err)
	}
	fmt.Println("VIPs:", len(w.VIPs))
	fmt.Println("epochs:", w.NumEpochs())
	fmt.Printf("epoch 0 load: %.0f Gbps\n", w.TotalRate(0)/1e9)

	// Output:
	// VIPs: 100
	// epochs: 2
	// epoch 0 load: 100 Gbps
}
